#!/usr/bin/env python3
"""Memcheck demo: find real memory bugs in a guest program.

The client below contains the classic bug zoo — an uninitialised branch
condition, a heap overrun, a use-after-free, a double free and a leak —
and Memcheck reports each one with a symbolised stack trace, then runs
its leak check.  A suppression file silences one error class, the way
teams silence known-unfixable library noise.

Run:  python examples/memcheck_demo.py
"""

import tempfile

from repro import Options, Valgrind, assemble, build_source

BUGGY = """
        .text
main:   call  uninit_branch
        call  heap_bugs
        call  make_leak
        movi  r0, 0
        ret

uninit_branch:
        subi  sp, 16          ; a local the program forgot to initialise
        ld    r0, [sp+4]
        addi  sp, 16
        cmpi  r0, 42          ; decision based on garbage
        je    ub1
ub1:    ret

heap_bugs:
        pushi 32
        call  malloc
        addi  sp, 4
        mov   r6, r0
        ld    r1, [r6+32]     ; read one word past the block
        push  r6
        call  free
        addi  sp, 4
        ld    r2, [r6+4]      ; use after free
        push  r6
        call  free            ; double free
        addi  sp, 4
        ret

make_leak:
        pushi 1000
        call  malloc          ; pointer dropped on the floor
        addi  sp, 4
        ret
"""

SUPPRESSIONS = """
# Silence the (deliberate) uninitialised branch in uninit_branch, the way
# one would silence a known-benign library warning.
{
   known-uninit-in-uninit_branch
   memcheck:UninitCondition
   fun:uninit_branch
}
"""


def main() -> None:
    image = assemble(build_source(BUGGY), filename="buggy.s")

    print("=== run 1: everything reported")
    vg = Valgrind("memcheck", Options(log_target="capture",
                                      tool_options=["--leak-check=full"]))
    res = vg.run(image)
    print(res.log)

    print("\n=== run 2: with a suppression file")
    with tempfile.NamedTemporaryFile("w", suffix=".supp", delete=False) as f:
        f.write(SUPPRESSIONS)
        supp_path = f.name
    opts = Options(log_target="capture", suppressions=[supp_path])
    res2 = Valgrind("memcheck", opts).run(image)
    kinds = [e.kind for e in res2.errors]
    print(f"errors now reported: {kinds}")
    assert "UninitCondition" not in kinds
    print("the uninitialised-branch report was suppressed; "
          "the heap bugs still show.")


if __name__ == "__main__":
    main()
