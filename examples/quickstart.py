#!/usr/bin/env python3
"""Quickstart: assemble a program, run it natively, run it under tools,
and look inside the D&R pipeline.

Run:  python examples/quickstart.py
"""

from repro import Options, Valgrind, assemble, build_source, run_native, run_tool
from repro.frontend.disasm import Disassembler
from repro.ir import fmt_irsb

# A small program: sum the squares 1..10 and print the result.  It uses
# the guest libc (malloc, putint) like a real client would.
PROGRAM = """
        .text
main:   pushi 40              ; int *squares = malloc(40)
        call  malloc
        addi  sp, 4
        mov   r6, r0
        movi  r1, 1
fill:   mov   r2, r1
        mul   r2, r1
        st    [r6+r1*4-4], r2 ; squares[i-1] = i*i
        inc   r1
        cmpi  r1, 11
        jle   fill
        movi  r0, 0           ; sum them
        movi  r1, 0
sum:    ld    r2, [r6+r1*4]
        add   r0, r2
        inc   r1
        cmpi  r1, 10
        jl    sum
        push  r0
        call  putint
        addi  sp, 4
        push  r6
        call  free
        addi  sp, 4
        movi  r0, 0
        ret
"""


def main() -> None:
    image = assemble(build_source(PROGRAM), filename="quickstart")

    print("=== native run (the baseline every slow-down is measured against)")
    nat = run_native(image)
    print(f"stdout: {nat.stdout.strip()}   "
          f"({nat.guest_insns} guest instructions)")

    print("\n=== the same program under Nulgrind (the null tool)")
    res = run_tool("none", image, options=Options(log_target="capture"))
    stats = res.core.scheduler.dispatcher.stats
    print(f"stdout: {res.stdout.strip()}   (identical, as it must be)")
    print(f"blocks executed: {stats.blocks_executed}, "
          f"translations made: {res.outcome.translations}, "
          f"dispatcher hit rate: {stats.hit_rate:.1%}")

    print("\n=== under Memcheck (definedness + addressability checking)")
    res = run_tool("memcheck", image, options=Options(log_target="capture"))
    print(f"stdout: {res.stdout.strip()}, errors: {len(res.errors)}")
    print(res.log.splitlines()[-2])

    print("\n=== what the tool saw: the IR of the fill loop (Figure 1 style)")
    vg = Valgrind("none", Options(log_target="capture"))
    vg.run(image)  # populate memory so we can disassemble from it
    mem = vg.memory
    dis = Disassembler(lambda a, n: mem.read_raw(a, n))
    block = dis.disasm_block(image.symbols["fill"])
    print(fmt_irsb(block))


if __name__ == "__main__":
    main()
