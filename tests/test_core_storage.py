"""Tests for the translation table, dispatcher cache behaviour, core
allocator, ThreadState, and the events registry."""

import pytest

from repro.core.allocator import CoreAllocator, CoreArenaError, CORE_REGION_BASE
from repro.core.events import EVENT_SPECS, EventRegistry
from repro.core.threadstate import ThreadState
from repro.core.translate import Translation
from repro.core.transtab import TranslationTable
from repro.guest import regs as R
from repro.ir.types import Ty
from repro.kernel.memory import GuestMemory


def _t(addr, length=4):
    return Translation(guest_addr=addr, code=b"", ranges=((addr, length),))


class TestTranslationTable:
    def test_insert_lookup(self):
        tab = TranslationTable(64)
        t = _t(0x1000)
        tab.insert(t)
        assert tab.lookup(0x1000) is t
        assert tab.lookup(0x2000) is None
        assert tab.stats.misses == 1

    def test_replace_same_address(self):
        tab = TranslationTable(64)
        tab.insert(_t(0x1000))
        t2 = _t(0x1000)
        tab.insert(t2)
        assert tab.lookup(0x1000) is t2
        assert len(tab) == 1

    def test_fifo_eviction_at_80_percent(self):
        tab = TranslationTable(10)
        for i in range(9):  # the 9th insert finds the table 80% full
            tab.insert(_t(0x1000 + i * 16))
        assert tab.stats.evict_rounds == 1
        # FIFO: the OLDEST translation went first.
        assert tab.lookup(0x1000) is None
        assert tab.lookup(0x1000 + 7 * 16) is not None

    def test_evicted_translations_marked_dead(self):
        tab = TranslationTable(10)
        first = _t(0x1000)
        tab.insert(first)
        for i in range(1, 9):
            tab.insert(_t(0x1000 + i * 16))
        assert first.dead

    def test_discard_range_covers_chased_ranges(self):
        tab = TranslationTable(64)
        t = Translation(
            guest_addr=0x1000, code=b"", ranges=((0x1000, 8), (0x5000, 8))
        )
        tab.insert(t)
        # Discarding the *chased* range must kill the translation too.
        assert tab.discard_range(0x5004, 1) == 1
        assert tab.lookup(0x1000) is None and t.dead

    def test_lookup_after_deletion_rehash(self):
        # Linear probing requires rehashing after deletions; colliding
        # entries must remain findable.
        tab = TranslationTable(8)
        addrs = [0x10, 0x10 + 8 * 4, 0x10 + 8 * 8]  # may collide mod 8
        for a in addrs:
            tab.insert(_t(a))
        tab.discard(addrs[0])
        for a in addrs[1:]:
            assert tab.lookup(a) is not None


class TestCoreAllocator:
    def test_alloc_in_core_region(self):
        mem = GuestMemory()
        alloc = CoreAllocator(mem)
        a = alloc.alloc(100)
        assert a >= CORE_REGION_BASE
        assert mem.read_raw(a, 100) == b"\0" * 100

    def test_free_and_reuse(self):
        alloc = CoreAllocator(GuestMemory())
        a = alloc.alloc(64)
        alloc.free(a)
        b = alloc.alloc(64)
        assert b == a  # free-list reuse

    def test_double_free_rejected(self):
        alloc = CoreAllocator(GuestMemory())
        a = alloc.alloc(16)
        alloc.free(a)
        with pytest.raises(CoreArenaError):
            alloc.free(a)

    def test_alloc_bytes(self):
        mem = GuestMemory()
        alloc = CoreAllocator(mem)
        a = alloc.alloc_bytes(b"hello")
        assert mem.read_raw(a, 5) == b"hello"

    def test_exhaustion(self):
        alloc = CoreAllocator(GuestMemory(), base=CORE_REGION_BASE,
                              limit=CORE_REGION_BASE + 0x2000)
        with pytest.raises(CoreArenaError, match="exhausted"):
            alloc.alloc(0x4000)


class TestThreadState:
    def test_register_accessors(self):
        ts = ThreadState()
        ts.set_reg(3, 0xDEADBEEF)
        assert ts.reg(3) == 0xDEADBEEF
        assert ts.get(R.gpr_offset(3), Ty.I32) == 0xDEADBEEF
        ts.sp = 0x1000
        assert ts.reg(R.SP) == 0x1000
        ts.pc = 0x42
        assert ts.get(R.OFFSET_PC, Ty.I32) == 0x42
        ts.set_freg(2, 1.5)
        assert ts.freg(2) == 1.5
        ts.set_vreg(1, 1 << 100)
        assert ts.vreg(1) == 1 << 100

    def test_shadow_offsets_match_paper(self):
        # Figure 2: %eax's shadow at 320, %ebx's (offset 12) at 332.
        assert R.shadow(0) == 320
        assert R.shadow(12) == 332

    def test_describe_diff(self):
        a, b = ThreadState(), ThreadState()
        b.set_reg(2, 5)
        b.set_freg(1, 2.0)
        diffs = a.describe_diff(b)
        assert any("r2" in d for d in diffs)
        assert any("f1" in d for d in diffs)
        assert a.architected_equal(a) and not a.architected_equal(b)


class TestEvents:
    def test_track_and_fire(self):
        ev = EventRegistry()
        got = []
        ev.track_new_mem_stack(lambda addr, size: got.append((addr, size)))
        ev.fire("new_mem_stack", 0x100, 8)
        ev.fire_new_mem_stack(0x200, 4)
        assert got == [(0x100, 8), (0x200, 4)]

    def test_untracked_fire_is_noop(self):
        EventRegistry().fire("die_mem_stack", 0, 1)

    def test_unknown_event_rejected(self):
        with pytest.raises(KeyError):
            EventRegistry().track("bogus_event", lambda: None)

    def test_tracks_stack_events_property(self):
        ev = EventRegistry()
        assert not ev.tracks_stack_events
        ev.track_die_mem_stack(lambda a, s: None)
        assert ev.tracks_stack_events

    def test_table1_structure(self):
        """The events system covers requirements R4-R7 (Table 1)."""
        reqs = {spec[0] for spec in EVENT_SPECS.values()}
        assert {"R4", "R5", "R6", "R7"} <= reqs
        names = set(EVENT_SPECS)
        assert {
            "pre_reg_read", "post_reg_write", "pre_mem_read",
            "pre_mem_read_asciiz", "pre_mem_write", "post_mem_write",
            "new_mem_startup", "new_mem_mmap", "die_mem_munmap",
            "new_mem_brk", "die_mem_brk", "copy_mem_mremap",
            "new_mem_stack", "die_mem_stack",
        } <= names

    def test_table1_rows_name_callbacks(self):
        ev = EventRegistry()

        def my_callback(tid, offset, size, name):
            pass

        ev.track_pre_reg_read(my_callback)
        rows = ev.table1()
        row = [r for r in rows if r[1] == "pre_reg_read"][0]
        assert row[0] == "R4" and "my_callback" in row[3]
