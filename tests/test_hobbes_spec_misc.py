"""Tests for the Hobbes type checker, the condition-code spec helper
(property-based equivalence with the real helper), signal frames, and
option parsing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Options, parse_argv
from repro.core.options import BadOption
from repro.frontend.helpers import CALC_COND
from repro.frontend.spec import vx32_spec_helper
from repro.guest import regs as R
from repro.ir import Binop, ByteState, Const, Get, IRInterpreter, IRSB, Put, RdTmp, Ty, WrTmp, c32
from repro.kernel.memory import GuestMemory, PROT_RW
from repro.kernel.sigframe import pop_signal_frame, push_signal_frame

from helpers import vg


class TestHobbes:
    def run_hobbes(self, src):
        return vg(src, "hobbes")

    def test_ptr_plus_ptr_detected(self):
        res = self.run_hobbes("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r6, r0
        pushi 8
        call malloc
        addi sp, 4
        add  r0, r6          ; ptr + ptr
        st   [sink], r0      ; keep the result live (else DCE removes it)
        movi r0, 0
        ret
        .data
sink:   .word 0
""")
        assert [e.kind for e in res.errors] == ["PtrPlusPtr"]

    def test_ptr_arith_detected(self):
        res = self.run_hobbes("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        muli r0, 2           ; multiplying a pointer
        st   [sink], r0
        movi r0, 0
        ret
        .data
sink:   .word 0
""")
        assert "PtrArith" in [e.kind for e in res.errors]

    def test_int_deref_detected(self):
        res = self.run_hobbes("""
        .text
main:   ld   r1, [n]         ; (not a constant, so nothing folds away)
        mul  r1, r1          ; r1 proved to be an INT
        ld   r0, [r1]        ; dereferencing a proven integer
        st   [sink], r0
        movi r0, 0
        ret
        .data
n:      .word 2
sink:   .word 0
""")
        # The report fires before the (doomed) load executes.
        assert "IntDeref" in [e.kind for e in res.errors]

    def test_int_plus_unknown_is_not_flagged(self):
        # Table indexing: index arithmetic + an address constant must not
        # be reported (INT + UNKNOWN stays UNKNOWN).
        res = self.run_hobbes("""
        .text
main:   ld   r1, [n]
        mul  r1, r1          ; INT
        andi r1, 3
        ld   r0, [table+r1*4]
        st   [sink], r0
        movi r0, 0
        ret
        .data
n:      .word 2
table:  .word 1, 2, 3, 4
sink:   .word 0
""")
        assert res.errors == []

    def test_legitimate_pointer_use_is_clean(self):
        res = self.run_hobbes("""
        .text
main:   pushi 32
        call malloc
        addi sp, 4
        mov  r6, r0
        movi r1, 8
        add  r6, r1          ; ptr + int: a ptr
        sti  [r6], 7         ; deref: fine
        ld   r2, [r6]
        push r0
        call free
        addi sp, 4
        ; ptr - ptr is a legal ptrdiff...
        pushi 8
        call malloc
        addi sp, 4
        sub  r6, r0
        ; ...and the result is an int you may multiply.
        muli r6, 4
        st   [sink], r6
        movi r0, 0
        ret
        .data
sink:   .word 0
""")
        assert [e.kind for e in res.errors] == []

    def test_tags_flow_through_memory(self):
        res = self.run_hobbes("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        st   [cell], r0      ; store the pointer
        ld   r1, [cell]      ; load it back: still a PTR
        pushi 8
        call malloc
        addi sp, 4
        add  r1, r0          ; ptr + ptr via the memory round-trip
        st   [cell], r1
        movi r0, 0
        ret
        .data
cell:   .word 0
""")
        assert [e.kind for e in res.errors] == ["PtrPlusPtr"]

    def test_stack_pointer_is_typed(self):
        res = self.run_hobbes("""
        .text
main:   mov  r1, sp
        mov  r2, sp
        add  r1, r2          ; sp + sp
        st   [sink], r1
        movi r0, 0
        ret
        .data
sink:   .word 0
""")
        assert [e.kind for e in res.errors] == ["PtrPlusPtr"]


class TestSpecHelperEquivalence:
    """The partial evaluator must agree with the real flags helper."""

    @settings(max_examples=300, deadline=None)
    @given(
        st.sampled_from([R.CC_OP_ADD, R.CC_OP_SUB, R.CC_OP_LOGIC, R.CC_OP_COPY]),
        st.integers(0, 13),
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 0xFFFFFFFF),
    )
    def test_spec_matches_helper(self, cc_op, cond, dep1, dep2):
        from repro.ir.expr import CCall

        args = (c32(cond), c32(cc_op), c32(dep1), c32(dep2), c32(0))
        replacement = vx32_spec_helper(CALC_COND, args)
        want = R.evaluate_cond(
            cond, R.calculate_flags(cc_op, dep1, dep2, 0)
        )
        if replacement is None:
            return  # helper not specialised for this case: fine
        # Evaluate the inline replacement with the IR interpreter.
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, replacement))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        stt = ByteState()
        IRInterpreter().run_block(sb, stt)
        assert stt.get(0, Ty.I32) == want, (cc_op, cond, dep1, dep2)

    def test_sub_conditions_are_specialised(self):
        """The common cmp+jcc patterns must all inline (no helper call)."""
        from repro.ir.expr import CCall

        for cond in (R.COND_Z, R.COND_NZ, R.COND_B, R.COND_NB, R.COND_BE,
                     R.COND_NBE, R.COND_L, R.COND_NL, R.COND_LE, R.COND_NLE):
            args = (c32(cond), c32(R.CC_OP_SUB),
                    Get(36, Ty.I32), Get(40, Ty.I32), c32(0))
            assert vx32_spec_helper(CALC_COND, args) is not None, cond

    def test_non_constant_op_not_specialised(self):
        args = (c32(R.COND_Z), Get(32, Ty.I32), c32(0), c32(0), c32(0))
        assert vx32_spec_helper(CALC_COND, args) is None


class _FakeCtx:
    def __init__(self):
        self.regs = [0x100 * i for i in range(8)]
        self.pc = 0xAAAA
        self.thunk = (2, 3, 4, 5)

    def get_reg(self, i):
        return self.regs[i]

    def set_reg_(self, i, v):
        self.regs[i] = v

    def get_pc(self):
        return self.pc

    def set_pc(self, v):
        self.pc = v

    def get_thunk(self):
        return self.thunk

    def set_thunk(self, *vals):
        self.thunk = vals


class TestSignalFrames:
    def test_push_pop_roundtrip(self):
        mem = GuestMemory()
        mem.map(0x1000, 0x2000, PROT_RW)
        ctx = _FakeCtx()
        ctx.regs[R.SP] = 0x2800
        saved_regs = list(ctx.regs)
        saved_pc = ctx.pc
        saved_thunk = ctx.thunk

        push_signal_frame(ctx, mem, sig=14, handler=0xBEEF, sigpage=0xF000)
        assert ctx.pc == 0xBEEF
        # Handler sees its argument at [sp+4] and the trampoline at [sp].
        assert mem.load32(ctx.regs[R.SP]) == 0xF000
        assert mem.load32(ctx.regs[R.SP] + 4) == 14

        # Simulate the handler returning: ret pops the trampoline address.
        ctx.regs[R.SP] += 4
        # Clobber everything, then sigreturn.
        ctx.regs[0] = 0xDEAD
        ctx.thunk = (0, 0, 0, 0)
        sig = pop_signal_frame(ctx, mem)
        assert sig == 14
        assert ctx.regs == saved_regs
        assert ctx.pc == saved_pc
        assert ctx.thunk == saved_thunk


class TestOptions:
    def test_parse_argv_splits_core_tool_client(self):
        tool, opts, rest = parse_argv(
            ["--tool=memcheck", "--smc-check=all", "--leak-check=full",
             "prog.s", "--not-an-option", "arg"]
        )
        assert tool == "memcheck"
        assert opts.smc_check == "all"
        assert opts.tool_options == ["--leak-check=full"]
        assert rest == ["prog.s", "--not-an-option", "arg"]

    def test_flag_options(self):
        o = Options()
        assert o.set("--chaining=yes") and o.chaining
        assert o.set("--unroll=no") and not o.unroll
        with pytest.raises(BadOption):
            o.set("--chaining=maybe")

    def test_validation(self):
        o = Options()
        with pytest.raises(BadOption):
            o.set("--smc-check=sometimes")
        with pytest.raises(BadOption):
            o.set("--dispatch-cache=1000")  # not a power of two
        with pytest.raises(BadOption):
            o.set("--transtab-policy=random")

    def test_numeric_options(self):
        o = Options()
        o.set("--max-stackframe=0x100000")
        assert o.max_stackframe == 0x100000
        o.set("--thread-timeslice=500")
        assert o.thread_timeslice == 500

    def test_unknown_is_reported_not_raised(self):
        assert Options().set("--frobnicate=1") is False
