"""Tests for the IR validator (type/SSA/flatness) and the IR interpreter."""

import pytest

from repro.ir import (
    IRSB,
    Binop,
    ByteState,
    CCall,
    Const,
    Dirty,
    Exit,
    Get,
    HelperRegistry,
    IRFlatnessError,
    IRInterpreter,
    IRTypeError,
    ITE,
    JumpKind,
    Load,
    Put,
    RdTmp,
    Store,
    Ty,
    Unop,
    WrTmp,
    c1,
    c32,
    check_flat,
    validate,
)


def _block(next_=None):
    sb = IRSB(guest_addr=0x1000)
    sb.next = next_ if next_ is not None else c32(0x1004)
    return sb


class TestTypecheck:
    def test_ok_block(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, Get(0, Ty.I32)), Put(4, RdTmp(t))]
        validate(sb)

    def test_binop_arg_mismatch(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, Binop("Add32", c32(1), Const(Ty.I8, 1)))]
        with pytest.raises(IRTypeError):
            validate(sb)

    def test_tmp_declared_type_mismatch(self):
        sb = _block()
        t = sb.new_tmp(Ty.I8)
        sb.stmts = [WrTmp(t, c32(1))]
        with pytest.raises(IRTypeError):
            validate(sb)

    def test_ssa_double_write_rejected(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, c32(1)), WrTmp(t, c32(2))]
        with pytest.raises(IRTypeError, match="SSA"):
            validate(sb)

    def test_read_before_write_rejected(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [Put(0, RdTmp(t)), WrTmp(t, c32(1))]
        with pytest.raises(IRTypeError, match="before write"):
            validate(sb)

    def test_exit_guard_must_be_i1(self):
        sb = _block()
        sb.stmts = [Exit(c32(1), 0x2000, JumpKind.Boring)]
        with pytest.raises(IRTypeError):
            validate(sb)

    def test_next_must_be_i32(self):
        sb = _block(next_=Const(Ty.I8, 1))
        with pytest.raises(IRTypeError):
            validate(sb)

    def test_store_address_must_be_i32(self):
        sb = _block()
        sb.stmts = [Store(Const(Ty.I8, 0), c32(1))]
        with pytest.raises(IRTypeError):
            validate(sb)

    def test_ite_branches_must_agree(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, ITE(c1(1), c32(1), Const(Ty.I8, 1)))]
        with pytest.raises(IRTypeError):
            validate(sb)


class TestFlatness:
    def test_nested_operand_rejected(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, Binop("Add32", Binop("Add32", c32(1), c32(2)), c32(3)))]
        with pytest.raises(IRFlatnessError):
            check_flat(sb)

    def test_put_data_must_be_atom(self):
        sb = _block()
        sb.stmts = [Put(0, Get(4, Ty.I32))]
        with pytest.raises(IRFlatnessError):
            check_flat(sb)

    def test_flat_block_passes(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        u = sb.new_tmp(Ty.I32)
        sb.stmts = [
            WrTmp(t, Get(0, Ty.I32)),
            WrTmp(u, Binop("Add32", RdTmp(t), c32(1))),
            Put(0, RdTmp(u)),
        ]
        check_flat(sb)


class TestInterpreter:
    def test_arith_and_state(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [
            WrTmp(t, Binop("Mul32", Get(0, Ty.I32), c32(3))),
            Put(4, RdTmp(t)),
        ]
        st = ByteState()
        st.put(0, Ty.I32, 7)
        nxt, jk = IRInterpreter().run_block(sb, st)
        assert st.get(4, Ty.I32) == 21
        assert (nxt, jk) == (0x1004, JumpKind.Boring)

    def test_memory(self):
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [
            Store(c32(0x100), c32(0xDEAD)),
            WrTmp(t, Load(Ty.I32, c32(0x100))),
            Put(0, RdTmp(t)),
        ]
        st = ByteState()
        IRInterpreter().run_block(sb, st)
        assert st.get(0, Ty.I32) == 0xDEAD

    def test_exit_taken_and_not_taken(self):
        for guard, want in ((1, 0x2000), (0, 0x1004)):
            sb = _block()
            sb.stmts = [Exit(c1(guard), 0x2000, JumpKind.Boring)]
            nxt, _ = IRInterpreter().run_block(sb, ByteState())
            assert nxt == want

    def test_ite_laziness(self):
        # The untaken branch is not evaluated (no spurious division etc.),
        # because the interpreter only walks the selected side.
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, ITE(c1(1), c32(5), c32(7))), Put(0, RdTmp(t))]
        st = ByteState()
        IRInterpreter().run_block(sb, st)
        assert st.get(0, Ty.I32) == 5

    def test_ccall_pure_helper(self):
        helpers = HelperRegistry()
        helpers.register_pure("triple", lambda x: (x * 3) & 0xFFFFFFFF)
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, CCall(Ty.I32, "triple", (c32(5),))), Put(0, RdTmp(t))]
        st = ByteState()
        IRInterpreter(helpers).run_block(sb, st)
        assert st.get(0, Ty.I32) == 15

    def test_dirty_guard_and_env(self):
        calls = []
        helpers = HelperRegistry()
        helpers.register_dirty("probe", lambda env, x: calls.append((env, x)) or 9)
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [
            Dirty("probe", (c32(1),), guard=c1(0), tmp=None, retty=None),
            WrTmp(t, c32(0)),
            Put(0, RdTmp(t)),
        ]
        env = object()
        interp = IRInterpreter(helpers, env=env)
        interp.run_block(sb, ByteState())
        assert calls == []  # guard false: not called
        sb2 = _block()
        t2 = sb2.new_tmp(Ty.I32)
        sb2.stmts = [Dirty("probe", (c32(7),), tmp=t2, retty=Ty.I32), Put(0, RdTmp(t2))]
        st = ByteState()
        interp.run_block(sb2, st)
        assert calls == [(env, 7)]
        assert st.get(0, Ty.I32) == 9

    def test_ccall_to_dirty_helper_rejected(self):
        helpers = HelperRegistry()
        helpers.register_dirty("impure", lambda env: 0)
        sb = _block()
        t = sb.new_tmp(Ty.I32)
        sb.stmts = [WrTmp(t, CCall(Ty.I32, "impure", ()))]
        with pytest.raises(RuntimeError, match="non-pure"):
            IRInterpreter(helpers).run_block(sb, ByteState())


class TestHelperRegistry:
    def test_duplicate_rejected(self):
        h = HelperRegistry()
        h.register_pure("f", lambda: 0)
        with pytest.raises(ValueError):
            h.register_pure("f", lambda: 1)

    def test_addresses_are_distinct(self):
        h = HelperRegistry()
        a = h.register_pure("f", lambda: 0)
        b = h.register_pure("g", lambda: 1)
        assert a.address != b.address
        assert a.address >= HelperRegistry.ADDRESS_BASE

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            HelperRegistry().lookup("nope")
