"""Differential suite for the Memcheck pygen fast paths.

The inlined LOADV/STOREV sequences are a pure performance feature: with
``--memcheck-fastpath=no`` every access goes through the helpers
instead.  Everything observable — the error log, exit codes, stdout,
page-table statistics — must be byte-identical either way, on every
codegen tier, under fault-injection chaos, and with a warm on-disk
cache.  Only the ``fastpath`` counter sub-section (which counts emitted
fast-path hits, an emission property by construction) may differ.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import Options, assemble, run_tool

from helpers import asm_image, programs, vg

TIERS = ["closures", "pygen", "auto", "traces"]

#: Named workloads covering the fast paths' interesting edges: clean
#: loops (pure fast path), heap overruns and use-after-free (A-bit
#: check must route to the error-reporting helper), uninitialised reads
#: (V-bit propagation through the inline slice), and stack churn
#: (partially-addressable pages).
PROGRAMS = {
    "clean_heap_loop": """
        .text
main:   pushi 64
        call malloc
        addi sp, 4
        mov  r6, r0
        movi r1, 0
fill:   st   [r6+r1], r1
        addi r1, 4
        cmpi r1, 64
        jne  fill
        movi r1, 0
        movi r3, 0
sum:    ld   r2, [r6+r1]
        add  r3, r2
        addi r1, 4
        cmpi r1, 64
        jne  sum
        push r6
        call free
        addi sp, 4
        movi r0, 0
        ret
""",
    "overrun_rw": """
        .text
main:   pushi 16
        call malloc
        addi sp, 4
        ld   r1, [r0+16]
        sti  [r0+20], 5
        push r0
        call free
        addi sp, 4
        movi r0, 0
        ret
""",
    "use_after_free": """
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r6, r0
        push r6
        call free
        addi sp, 4
        ld   r1, [r6]
        movi r0, 0
        ret
""",
    "uninit_condition": """
        .text
main:   subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        cmpi r0, 1
        je   x
x:      movi r0, 0
        ret
""",
    "stack_churn": """
        .text
main:   movi r2, 0
        movi r3, 0
top:    subi sp, 16
        sti  [sp], 7
        ld   r1, [sp]
        add  r3, r1
        addi sp, 16
        addi r2, 1
        cmpi r2, 20
        jne  top
        movi r0, 0
        ret
""",
}


def observe(res):
    """Everything that must not depend on the fast path."""
    return (
        res.exit_code,
        res.stdout,
        res.log,
        [(e.kind, e.message) for e in res.errors],
        {k: v for k, v in res.stats().get("memcheck_shadow", {}).items()
         if k != "fastpath"},
    )


def run_one(src, fast, **kw):
    return vg(src, "memcheck", memcheck_fastpath=fast, **kw)


class TestDifferentialAcrossTiers:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_fastpath_is_observably_identical(self, tier, name):
        on = run_one(PROGRAMS[name], True, codegen=tier)
        off = run_one(PROGRAMS[name], False, codegen=tier)
        assert observe(on) == observe(off)

    @pytest.mark.parametrize("tier", TIERS)
    def test_tiers_agree_with_closures_reference(self, tier):
        """Every tier with the fast path on must match the helper-only
        closures tier (the reference semantics)."""
        ref = run_one(PROGRAMS["overrun_rw"], False, codegen="closures")
        got = run_one(PROGRAMS["overrun_rw"], True, codegen=tier)
        assert observe(got) == observe(ref)


class TestReplayContract:
    @pytest.mark.parametrize("tier", TIERS)
    def test_checkpointed_log_replays_across_fastpath_and_tiers(
            self, tmp_path, tier):
        """The fast-path flag is outside the replay contract: a log
        recorded with checkpoints under fastpath=on/closures must replay
        bit-exactly with fastpath=off under every tier (snapshot hashes
        mask the tier- and fastpath-dependent thread-state scratch)."""
        path = str(tmp_path / "v.rrlog")
        rec = run_one(PROGRAMS["clean_heap_loop"], True, codegen="closures",
                      record=path, checkpoint_every=50)
        rep = run_one(PROGRAMS["clean_heap_loop"], False, codegen=tier,
                      replay=path)
        assert observe(rep) == observe(rec)
        stats = rep.stats()["replay"]
        assert stats["divergences"] == 0
        assert stats["events_consumed"] == stats["log_events"]


class TestChaos:
    @pytest.mark.parametrize("name", ["clean_heap_loop", "overrun_rw"])
    def test_identical_under_fault_injection(self, name):
        spec = "mmap-enomem@999999,segv@999999,seed=5"
        on = run_one(PROGRAMS[name], True, codegen="pygen", inject=spec)
        off = run_one(PROGRAMS[name], False, codegen="pygen", inject=spec)
        assert observe(on) == observe(off)


class TestCounters:
    def test_pygen_counts_fast_hits(self):
        res = run_one(PROGRAMS["clean_heap_loop"], True, codegen="pygen")
        fp = res.stats()["memcheck_shadow"]["fastpath"]
        assert fp["enabled"] == 1
        assert fp["fast_loads"] > 0 and fp["fast_stores"] > 0

    def test_error_paths_go_through_helpers(self):
        """Accesses that must report errors take the slow branch — the
        inline A-bit check may never swallow an invalid access."""
        res = run_one(PROGRAMS["use_after_free"], True, codegen="pygen")
        fp = res.stats()["memcheck_shadow"]["fastpath"]
        assert fp["enabled"] == 1
        assert fp["slow_loads"] > 0
        assert [e.kind for e in res.errors] == ["InvalidRead"]

    def test_disabled_emits_no_fast_code(self):
        res = run_one(PROGRAMS["clean_heap_loop"], False, codegen="pygen")
        fp = res.stats()["memcheck_shadow"]["fastpath"]
        assert fp == {"enabled": 0, "fast_loads": 0, "fast_stores": 0,
                      "slow_loads": 0, "slow_stores": 0}

    def test_flag_spelling(self):
        opts = Options(log_target="capture")
        assert opts.set("--memcheck-fastpath=no")
        assert opts.memcheck_fastpath is False
        assert opts.set("--memcheck-fastpath=yes")
        assert opts.memcheck_fastpath is True

    def test_fleet_merge_sums_shadow_counters(self):
        """The fleet supervisor's additive stats merge must aggregate the
        memcheck_shadow section across jobs (numeric leaves sum)."""
        from repro.core.supervisor import merge_stats

        a = run_one(PROGRAMS["clean_heap_loop"], True, codegen="pygen")
        b = run_one(PROGRAMS["stack_churn"], True, codegen="pygen")
        sa, sb = a.stats()["memcheck_shadow"], b.stats()["memcheck_shadow"]
        total: dict = {}
        merge_stats(total, {"memcheck_shadow": sa})
        merge_stats(total, {"memcheck_shadow": sb})
        merged = total["memcheck_shadow"]
        for key in ("pages_private", "cow_promotions"):
            assert merged[key] == sa[key] + sb[key]
        for key in ("fast_loads", "fast_stores", "slow_loads", "slow_stores"):
            assert merged["fastpath"][key] == \
                sa["fastpath"][key] + sb["fastpath"][key]
        assert merged["fastpath"]["fast_loads"] > 0


class TestPersistentCache:
    @pytest.mark.parametrize("fast", [True, False])
    def test_warm_cache_is_byte_identical(self, tmp_path, fast):
        src = PROGRAMS["clean_heap_loop"]
        cold = run_one(src, fast, codegen="pygen", cache_dir=str(tmp_path))
        warm = run_one(src, fast, codegen="pygen", cache_dir=str(tmp_path))
        assert observe(warm) == observe(cold)
        assert warm.stats()["cache"]["hits"] >= 1

    def test_fastpath_variants_do_not_collide(self, tmp_path):
        """On/off runs sharing one cache dir must not serve each other's
        compiled sources (the variant is part of the cache key)."""
        src = PROGRAMS["clean_heap_loop"]
        on = run_one(src, True, codegen="pygen", cache_dir=str(tmp_path))
        off = run_one(src, False, codegen="pygen", cache_dir=str(tmp_path))
        assert observe(on) == observe(off)
        fp = off.stats()["memcheck_shadow"]["fastpath"]
        assert fp["fast_loads"] == 0 and fp["fast_stores"] == 0


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_random_programs_identical_on_off(source):
    img = assemble(source, filename="rand")
    on = run_tool("memcheck", img,
                  options=Options(log_target="capture", codegen="pygen",
                                  memcheck_fastpath=True))
    off = run_tool("memcheck", img,
                   options=Options(log_target="capture", codegen="pygen",
                                   memcheck_fastpath=False))
    assert observe(on) == observe(off)
