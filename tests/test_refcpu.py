"""Reference-CPU unit tests: semantics of representative instructions."""

import pytest

from repro.guest.asm import assemble
from repro.guest.refcpu import CPUError, RefCPU, TrapKind, MACHID_VALUES
from repro.guest.regs import FLAG_C, FLAG_O, FLAG_S, FLAG_Z
from repro.kernel.memory import GuestFault, GuestMemory, PROT_RW, prot_from_str


def make_cpu(src: str, *, stack: bool = True):
    img = assemble(src)
    mem = GuestMemory()
    for seg in img.segments:
        mem.map(seg.addr, max(len(seg.data), 1), prot_from_str(seg.perms))
        mem.write_raw(seg.addr, seg.data)
    if stack:
        mem.map(0xBFF00000, 0x10000, PROT_RW)
    cpu = RefCPU(mem)
    cpu.pc = img.entry
    cpu.regs[4] = 0xBFF10000
    return cpu, img


def run(src: str, **kw):
    cpu, img = make_cpu(src, **kw)
    trap = cpu.run(100000)
    assert trap is TrapKind.HALT, trap
    return cpu, img


class TestALUFlags:
    def test_add_carry_and_zero(self):
        cpu, _ = run("movi r0, -1\naddi r0, 1\nhalt\n")
        assert cpu.regs[0] == 0
        assert cpu.flags() & FLAG_Z and cpu.flags() & FLAG_C

    def test_sub_borrow(self):
        cpu, _ = run("movi r0, 0\nsubi r0, 1\nhalt\n")
        assert cpu.regs[0] == 0xFFFFFFFF
        assert cpu.flags() & FLAG_C and cpu.flags() & FLAG_S

    def test_signed_overflow(self):
        cpu, _ = run("movi r0, 0x7FFFFFFF\naddi r0, 1\nhalt\n")
        assert cpu.flags() & FLAG_O and cpu.flags() & FLAG_S

    def test_logic_clears_carry(self):
        cpu, _ = run("movi r0, -1\naddi r0, 1\nandi r0, 0\nhalt\n")
        assert not (cpu.flags() & FLAG_C) and cpu.flags() & FLAG_Z

    def test_shift_by_zero_preserves_flags(self):
        cpu, _ = run(
            "movi r0, 0\nsubi r0, 1\nmovi r1, 0\nmovi r2, 5\nshl r2, r1\nhalt\n"
        )
        assert cpu.flags() & FLAG_C  # still from the subi
        assert cpu.regs[2] == 5

    def test_shl_last_bit_out(self):
        cpu, _ = run("movi r0, 0x80000000\nshl r0, 1\nhalt\n")
        assert cpu.regs[0] == 0 and cpu.flags() & FLAG_C

    def test_mul_overflow_flag(self):
        cpu, _ = run("movi r0, 0x10000\nmovi r1, 0x10000\nmul r0, r1\nhalt\n")
        assert cpu.regs[0] == 0 and cpu.flags() & FLAG_C

    def test_neg_sets_carry_for_nonzero(self):
        cpu, _ = run("movi r0, 5\nneg r0\nhalt\n")
        assert cpu.regs[0] == 0xFFFFFFFB and cpu.flags() & FLAG_C
        cpu, _ = run("movi r0, 0\nneg r0\nhalt\n")
        assert not (cpu.flags() & FLAG_C)


class TestControlFlow:
    def test_call_ret(self):
        cpu, _ = run("call f\nmovi r1, 2\nhalt\nf: movi r0, 1\nret\n")
        assert (cpu.regs[0], cpu.regs[1]) == (1, 2)

    def test_conditional_branches(self):
        cpu, _ = run(
            "movi r0, 5\ncmpi r0, 5\nje yes\nmovi r1, 0\nhalt\n"
            "yes: movi r1, 1\nhalt\n"
        )
        assert cpu.regs[1] == 1

    def test_signed_unsigned_branch_difference(self):
        src = (
            "movi r0, -1\ncmpi r0, 1\n"
            "jl sless\nmovi r1, 0\njmp next\nsless: movi r1, 1\n"
            "next: cmpi r0, 1\njltu uless\nmovi r2, 0\nhalt\n"
            "uless: movi r2, 1\nhalt\n"
        )
        cpu, _ = run(src)
        assert cpu.regs[1] == 1  # -1 < 1 signed
        assert cpu.regs[2] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_indirect_jump(self):
        cpu, _ = run("movi r0, t\njmp r0\nmovi r1, 0\nhalt\nt: movi r1, 7\nhalt\n")
        assert cpu.regs[1] == 7

    def test_push_pop(self):
        cpu, _ = run("movi r0, 0x1234\npush r0\npop r1\nhalt\n")
        assert cpu.regs[1] == 0x1234

    def test_pop_into_sp(self):
        # Matches the documented semantics: pop sp leaves sp = old sp + 4.
        cpu, _ = run("mov r6, sp\npush r0\npop sp\nhalt\n")
        assert cpu.regs[4] == cpu.regs[6]


class TestTraps:
    def test_halt_syscall_lcall_clreq(self):
        cpu, _ = make_cpu("syscall\nlcall 3\nclreq\nhalt\n")
        assert cpu.run() is TrapKind.SYSCALL
        assert cpu.run() is TrapKind.LCALL and cpu.trap_arg == 3
        assert cpu.run() is TrapKind.CLREQ
        assert cpu.run() is TrapKind.HALT

    def test_budget(self):
        cpu, _ = make_cpu("x: jmp x\n")
        assert cpu.run(10) is TrapKind.BUDGET
        assert cpu.insn_count == 10

    def test_division_by_zero(self):
        cpu, _ = make_cpu("movi r0, 1\nmovi r1, 0\ndivu r0, r1\nhalt\n")
        with pytest.raises(ZeroDivisionError):
            cpu.run()

    def test_bad_opcode(self):
        cpu, _ = make_cpu(".data\nnothing: .byte 0\n", stack=False)
        cpu.mem.map(0x5000, 0x1000, prot_from_str("rx"))
        cpu.mem.write_raw(0x5000, b"\xee")
        cpu.pc = 0x5000
        with pytest.raises(CPUError, match="cannot decode"):
            cpu.run()

    def test_fault_on_unmapped(self):
        cpu, _ = make_cpu("ld r0, [0x90000000]\nhalt\n")
        with pytest.raises(GuestFault):
            cpu.run()

    def test_fault_on_exec_of_nonexec(self):
        cpu, _ = make_cpu("halt\n.data\nd: .word 0\n")
        cpu.pc = 0x11000  # the data segment
        with pytest.raises(GuestFault):
            cpu.run()


class TestMisc:
    def test_machid(self):
        cpu, _ = run("machid\nhalt\n")
        assert tuple(cpu.regs[:4]) == MACHID_VALUES

    def test_cycles(self):
        cpu, _ = run("nop\nnop\ncycles\nhalt\n")
        assert cpu.regs[0] == 3  # counts retired instructions, itself included

    def test_lea(self):
        cpu, _ = run("movi r1, 0x100\nmovi r2, 4\nlea r0, [r1+r2*8+3]\nhalt\n")
        assert cpu.regs[0] == 0x100 + 32 + 3

    def test_sign_extensions(self):
        cpu, _ = run("movi r0, 0x80\nsxb r0\nmovi r1, 0x8000\nsxw r1\nhalt\n")
        assert cpu.regs[0] == 0xFFFFFF80
        assert cpu.regs[1] == 0xFFFF8000

    def test_narrow_loads_stores(self):
        cpu, _ = run(
            "movi r0, 0x1234ABCD\nst [buf], r0\n"
            "ldb r1, [buf+1]\nldbs r2, [buf+1]\nldw r3, [buf]\nldws r6, [buf+2]\n"
            "halt\n.data\nbuf: .word 0\n"
        )
        assert cpu.regs[1] == 0xAB
        assert cpu.regs[2] == 0xFFFFFFAB
        assert cpu.regs[3] == 0xABCD
        assert cpu.regs[6] == 0x1234

    def test_fp_basics(self):
        cpu, _ = run(
            "fldi f0, 3\nfldi f1, 4\nfmul f0, f1\nfsqrt f0, f0\n"
            "fcvti r0, f0\nhalt\n"
        )
        assert cpu.regs[0] == 3  # sqrt(12) = 3.46 truncated

    def test_fcmp_flags(self):
        cpu, _ = run("fldi f0, 1\nfldi f1, 2\nfcmp f0, f1\nhalt\n")
        assert cpu.flags() & FLAG_C and not cpu.flags() & FLAG_Z

    def test_simd_add_and_splat(self):
        cpu, _ = run(
            "movi r0, 3\nvsplatb v0, r0\nvmov v1, v0\nvaddb v0, v1\n"
            "vst [buf], v0\nld r1, [buf]\nhalt\n.data\n.align 16\nbuf: .space 16\n"
        )
        assert cpu.regs[1] == 0x06060606

    def test_icache_coherence(self):
        # Overwrite an executed instruction; re-execution sees the new code.
        cpu, img = run(
            "movi r0, 1\n"        # will be patched to movi r0, 9
            "halt\n"
        )
        assert cpu.regs[0] == 1
        patch_addr = img.entry + 2  # the imm32 field of movi
        cpu.mem.protect(img.entry & ~0xFFF, 0x1000, prot_from_str("rwx"))
        cpu.mem.write(patch_addr, (9).to_bytes(4, "little"))
        cpu.pc = img.entry
        assert cpu.run() is TrapKind.HALT
        assert cpu.regs[0] == 9
