"""The superblock trace tier (``--codegen=traces``).

The differential suites (test_perf_mode, test_fault_precision,
test_replay_differential) prove the trace tier computes bit-identically
to the closure engine; this file tests the trace machinery itself:
recording and stitching, cross-block optimisation wins, side exits,
invalidation (SMC discard, transtab eviction, munmap), the stale-code
consistency contract, and the ``--stats=json`` ``traces`` section.
"""

from __future__ import annotations

import pytest

from repro import Options
from repro.core.codegen import CODEGEN_MODES
from repro.core.options import BadOption

from .helpers import asm_image, native, vg

#: A nested hot loop: the inner chain records and stitches, the outer
#: back edge leaves the trace through a side exit every iteration.
NESTED_LOOP_SRC = """
        .text
main:   movi r0, 0
        movi r1, 0
        movi fp, 200
outer:  movi r2, 3
inner:  add  r0, r2
        dec  r2
        jnz  inner
        inc  r1
        dec  fp
        jnz  outer
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
"""

#: Many distinct call targets — enough blocks to overflow a tiny
#: translation table while traces are live.
CALL_HEAVY_SRC = """
        .text
main:   movi r6, 0
        movi fp, 60
loop:   call fn1
        add  r6, r0
        call fn2
        add  r6, r0
        call fn3
        add  r6, r0
        dec  fp
        jnz  loop
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
fn1:    movi r0, 1
        ret
fn2:    movi r0, 2
        ret
fn3:    movi r0, 3
        ret
"""


def run_traces(src_or_img, **kw):
    kw.setdefault("codegen", "traces")
    kw.setdefault("trace_threshold", 5)
    kw.setdefault("stats_format", "json")
    return vg(src_or_img, "none", **kw)


class TestOptions:
    def test_traces_is_a_codegen_mode(self):
        assert "traces" in CODEGEN_MODES
        o = Options()
        assert o.set("--codegen=traces")
        assert o.codegen == "traces"

    def test_trace_threshold_flag(self):
        o = Options()
        assert o.set("--trace-threshold=3")
        assert o.trace_threshold == 3
        with pytest.raises(BadOption):
            o.set("--trace-threshold=0")

    def test_max_trace_blocks_flag(self):
        o = Options()
        assert o.set("--max-trace-blocks=4")
        assert o.max_trace_blocks == 4
        with pytest.raises(BadOption):
            o.set("--max-trace-blocks=1")


class TestRecordingAndStitching:
    def test_hot_chain_becomes_a_trace(self):
        img = asm_image(NESTED_LOOP_SRC)
        nat = native(img)
        res = run_traces(img)
        assert res.exit_code == nat.exit_code
        assert res.stdout == nat.stdout
        tr = res.stats()["traces"]
        assert tr["traces_built"] >= 1
        assert tr["runs"] > 0
        assert tr["blocks_retired"] > tr["runs"], \
            "a trace run must retire more than one member block"
        assert tr["insns_retired"] > 0
        mgr = res.core.scheduler.traces
        assert mgr is not None
        assert all(t.n_blocks >= 2 for t in mgr.traces.values())

    def test_side_exits_demote_cleanly(self):
        # The inner loop's exit edge fires every outer iteration: those
        # runs leave mid-trace, retire an exact partial insn count, and
        # execution continues in the block tier with no state damage.
        res = run_traces(NESTED_LOOP_SRC)
        tr = res.stats()["traces"]
        assert tr["side_exits"] > 0
        assert tr["side_exits"] < tr["runs"] + 1

    def test_accounting_identical_to_block_tiers(self):
        img = asm_image(NESTED_LOOP_SRC)
        rows = {}
        for mode in ("closures", "pygen", "traces"):
            r = vg(img, "none", codegen=mode, trace_threshold=5,
                   stats_format="json")
            s = r.stats()
            rows[mode] = (
                s["dispatch"]["blocks_executed"],
                s["dispatch"]["guest_insns"],
                s["translations_made"],
                r.stdout,
                r.exit_code,
            )
        assert rows["closures"] == rows["pygen"] == rows["traces"], rows

    def test_traces_never_enter_the_translation_table(self):
        res = run_traces(NESTED_LOOP_SRC)
        sched = res.core.scheduler
        addrs = {t.guest_addr for t in sched.transtab.all_translations()}
        for head, trace in sched.traces.traces.items():
            assert sched.transtab.lookup(head) is not trace
        assert sched.traces.traces, "no trace survived to end of run"
        # Heads are ordinary block translations; the trace shadows them.
        assert set(sched.traces.traces) <= addrs

    def test_max_trace_blocks_bounds_members(self):
        res = run_traces(CALL_HEAVY_SRC, trace_threshold=3,
                         max_trace_blocks=3)
        mgr = res.core.scheduler.traces
        assert mgr.traces_built >= 1
        assert all(t.n_blocks <= 3 for t in mgr.traces.values())

    def test_stats_json_section_shape(self):
        res = run_traces(NESTED_LOOP_SRC)
        tr = res.stats()["traces"]
        for key in ("trace_threshold", "max_trace_blocks", "traces_built",
                    "live_traces", "compile_failures", "recordings_aborted",
                    "demotions", "pruned", "runs", "side_exits",
                    "blocks_retired", "insns_retired", "compile_seconds"):
            assert key in tr, key
        # Other tiers report no traces section at all.
        plain = vg(NESTED_LOOP_SRC, "none", codegen="pygen",
                   stats_format="json")
        assert plain.stats()["traces"] is None


class TestInvalidation:
    def test_transtab_discard_severs_containing_traces(self):
        # An SMC flush and a munmap both funnel into transtab discards;
        # killing any member must sever every trace containing it.
        res = run_traces(NESTED_LOOP_SRC)
        sched = res.core.scheduler
        mgr = sched.traces
        assert mgr.traces
        head, trace = next(iter(mgr.traces.items()))
        head_t = trace.members[0]
        # With loop unrolling a member list may revisit the head; sever
        # through a *different* block so the head survives the discard.
        victim = next(m for m in trace.members if m is not head_t)
        affected = [tr for tr in mgr.traces.values()
                    if any(m is victim for m in tr.members)]
        before = mgr.demotions
        assert sched.transtab.discard(victim.guest_addr)
        assert trace.dead
        assert head not in mgr.traces
        # One demotion per trace sharing the victim block.
        assert mgr.demotions == before + len(affected)
        assert all(tr.dead for tr in affected)
        # The surviving head may re-record: its counter was reset.
        assert head_t.exec_count == 0

    def test_eviction_mid_run_severs_and_output_matches_native(self):
        img = asm_image(CALL_HEAVY_SRC)
        nat = native(img)
        res = run_traces(img, trace_threshold=3, transtab_entries=12,
                         dispatch_cache_size=16)
        assert res.stdout == nat.stdout
        assert res.exit_code == nat.exit_code
        sched = res.core.scheduler
        assert sched.transtab.stats.evict_rounds > 0, \
            "fixture too large to force eviction"
        tr = res.stats()["traces"]
        assert tr["traces_built"] >= 1
        assert tr["demotions"] >= 1, \
            "eviction never severed a live trace"
        for trace in sched.traces.traces.values():
            assert not trace.dead
            assert all(not m.dead for m in trace.members)

    def test_smc_patch_consistent_with_block_tier(self):
        # Under --smc-check=stack (the default), patching non-stack code
        # legitimately keeps running the stale translation; the trace
        # tier must reproduce that behaviour *exactly* — its build-time
        # member hash check pins traces to translation-time bytes, so a
        # stale block and a stale trace stay in agreement.
        src = """
        .text
main:   movi r0, 7          ; mmap(0, 4096, rwx)
        movi r1, 0
        movi r2, 4096
        movi r3, 7
        syscall
        mov  r6, r0
        ; write a tiny function: movi r0, 5 ; ret
        movi r1, 0x11
        stb  [r6], r1
        movi r1, 0
        stb  [r6+1], r1
        sti  [r6+2], 5
        movi r1, 3
        stb  [r6+6], r1
        movi r7, 40
hot:    call r6
        dec  r7
        jnz  hot
        push r0
        call putint
        addi sp, 4
        ; patch the immediate mid-run
        sti  [r6+2], 9
        call r6
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        img = asm_image(src)
        base = vg(img, "none", codegen="closures", smc_check="stack")
        res = run_traces(img, smc_check="stack", trace_threshold=3)
        assert res.stdout == base.stdout
        assert res.exit_code == base.exit_code

    def test_smc_flush_detected_with_check_all(self):
        # With --smc-check=all every block re-verifies its bytes, so the
        # patch is detected; checked blocks never join traces, and the
        # run stays correct end to end.
        src = """
        .text
main:   movi r0, 7
        movi r1, 0
        movi r2, 4096
        movi r3, 7
        syscall
        mov  r6, r0
        movi r1, 0x11
        stb  [r6], r1
        movi r1, 0
        stb  [r6+1], r1
        sti  [r6+2], 5
        movi r1, 3
        stb  [r6+6], r1
        movi r7, 10
hot:    call r6
        dec  r7
        jnz  hot
        push r0
        call putint
        addi sp, 4
        sti  [r6+2], 9
        call r6
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        res = run_traces(src, smc_check="all", trace_threshold=3)
        assert res.stdout.split() == ["5", "9"]
        sched = res.core.scheduler
        assert sched.transtab.stats.discarded >= 1
        assert sched.dispatcher.stats.smc_flushes >= 1

    def test_low_quality_trace_is_pruned(self):
        # A trace whose runs on average retire fewer than 1.5 member
        # blocks past the probation window costs more than it saves;
        # the next side exit demotes it and pins the head to the block
        # tier so the same biased chain is not re-recorded.
        from repro.core.traces import _TRACE_PROBE

        res = run_traces(NESTED_LOOP_SRC)
        mgr = res.core.scheduler.traces
        head, trace = next(iter(mgr.traces.items()))
        head_t = trace.members[0]
        trace.runs = _TRACE_PROBE
        trace.blocks = _TRACE_PROBE  # avg 1.0 < 1.5
        before = mgr.pruned
        mgr.note_side_exit(trace)
        assert mgr.pruned == before + 1
        assert trace.dead
        assert head not in mgr.traces
        assert head_t.trace is None
        assert head_t.trace_failed

    def test_good_trace_survives_probation(self):
        res = run_traces(NESTED_LOOP_SRC)
        mgr = res.core.scheduler.traces
        head, trace = next(iter(mgr.traces.items()))
        trace.runs = 1000
        trace.blocks = 1000 * trace.n_blocks  # every run retires fully
        mgr.note_side_exit(trace)
        assert not trace.dead
        assert head in mgr.traces

    def test_failed_build_marks_head_and_never_retries(self):
        res = run_traces(NESTED_LOOP_SRC)
        sched = res.core.scheduler
        mgr = sched.traces
        head, trace = next(iter(mgr.traces.items()))
        head_t = trace.members[0]
        # Simulate a build failure on a fresh head: the flag stops both
        # re-requests and re-recordings.
        head_t.trace_failed = True
        mgr.request(head_t)
        assert head_t.guest_addr not in mgr._want


class TestTraceIRShape:
    def test_stitched_trace_spans_members_and_merges_ir(self):
        from repro.core.traces import TraceManager

        res = run_traces(NESTED_LOOP_SRC)
        mgr = res.core.scheduler.traces
        assert isinstance(mgr, TraceManager)
        for trace in mgr.traces.values():
            # Every member's guest range is covered by the trace.
            for m in trace.members[: trace.n_blocks]:
                assert trace.covers(m.guest_addr)
            assert trace.total_insns == trace.stats.guest_insns
            assert trace.compiled_fn is not None

    def test_trace_compiled_source_is_one_function(self):
        res = run_traces(NESTED_LOOP_SRC)
        mgr = res.core.scheduler.traces
        trace = next(iter(mgr.traces.values()))
        src = getattr(trace.compiled_fn, "pygen_source", None)
        assert src is not None
        assert src.count("def ") == 1
