"""Precise synchronous faults: the (signal, fault PC, fault address)
triple must be identical across the reference CPU, the default dispatch
loop, the --perf chained loop and the pygen/auto codegen tiers, and
guest handlers must be able to inspect the siginfo words and recover by
patching the saved PC."""

from __future__ import annotations

import pytest

from repro import Options, run_tool
from repro.core.errors import ExitCode
from repro.kernel.kernel import SIGFPE, SIGILL, SIGKILL, SIGSEGV, SIGTERM
from repro.core.tool import Tool

from .helpers import asm_image, native, vg

BAD = 0x90000000  # never mapped


def _quad(si):
    assert si is not None, "fault_info missing"
    return (si.sig, si.pc, si.addr, si.access)


def run_three(src):
    """Run under the native engine, the default loop and the perf loop."""
    img = asm_image(src)
    return native(img), vg(img), vg(img, perf=True)


#: Codegen-tier engines (the PR-3 pipeline): every fault quadruple must
#: match the reference CPU under these too.  auto uses a threshold of 2
#: so handler-adjacent blocks really cross the promotion boundary.
CODEGEN_ENGINES = {
    "pygen": {"perf": True, "codegen": "pygen"},
    "pygen-noperf": {"codegen": "pygen"},
    "auto": {"perf": True, "codegen": "auto", "jit_threshold": 2},
    # trace_threshold 2: handler-adjacent chains really get recorded, so
    # faults can strike *inside* a stitched superblock.
    "traces": {"codegen": "traces", "trace_threshold": 2},
    "traces-perf": {"perf": True, "codegen": "traces", "trace_threshold": 2},
}


def run_codegen_engines(src):
    img = asm_image(src)
    return {name: vg(img, **kw) for name, kw in CODEGEN_ENGINES.items()}


class TestFaultDifferential:
    """Acceptance: identical fault triples across all three engines."""

    CASES = {
        "bad-load": f"""
        .text
main:   movi r6, 1
        movi r7, 2
        ld   r0, [{BAD:#x}]
        halt
""",
        "bad-store": f"""
        .text
main:   movi r6, 3
        st   [{BAD:#x}], r6
        halt
""",
        "div-zero": """
        .text
main:   movi r0, 5
        movi r1, 0
        divu r0, r1
        halt
""",
        "undecodable": """
        .text
main:   jmp bad
bad:    .byte 0xff, 0xff, 0xff, 0xff, 0xff, 0xff
""",
        "bad-jump": f"""
        .text
main:   movi r2, {BAD:#x}
        jmp  r2
""",
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_triple_identical_across_engines(self, name):
        nat, dflt, perf = run_three(self.CASES[name])
        assert nat.fatal_signal is not None
        assert nat.exit_code == ExitCode.for_signal(nat.fatal_signal)
        assert dflt.exit_code == nat.exit_code == perf.exit_code
        assert (dflt.outcome.fatal_signal == nat.fatal_signal
                == perf.outcome.fatal_signal)
        ref = _quad(nat.fault_info)
        assert _quad(dflt.outcome.fault_info) == ref
        assert _quad(perf.outcome.fault_info) == ref

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_quad_identical_across_codegen_tiers(self, name):
        nat, dflt, _ = run_three(self.CASES[name])
        ref = _quad(nat.fault_info)
        for engine, res in run_codegen_engines(self.CASES[name]).items():
            assert res.exit_code == nat.exit_code, engine
            assert res.outcome.fatal_signal == nat.fatal_signal, engine
            assert _quad(res.outcome.fault_info) == ref, engine
            # Bit-identical architected effect: same completed guest
            # instruction count and output as the closure-tier run.
            assert res.outcome.guest_insns == dflt.outcome.guest_insns, engine
            assert res.stdout == dflt.stdout, engine

    def test_bad_load_fault_details(self):
        nat, dflt, perf = run_three(self.CASES["bad-load"])
        for si in (nat.fault_info, dflt.outcome.fault_info,
                   perf.outcome.fault_info):
            assert si.sig == SIGSEGV
            assert si.addr == BAD
            assert si.access == "read"

    def test_div_zero_fault_is_at_the_div(self):
        nat, dflt, perf = run_three(self.CASES["div-zero"])
        for si in (nat.fault_info, dflt.outcome.fault_info,
                   perf.outcome.fault_info):
            assert si.sig == SIGFPE
            assert si.access == "fpe"
            assert si.pc == si.addr

    def test_fatal_report_is_logged(self):
        res = vg(self.CASES["bad-load"])
        assert "terminating with default action of signal 11" in res.log
        assert f"{BAD:#x}" in res.log


#: Handler reads the siginfo words ([sp+64] fault addr, [sp+68] access
#: code) and recovers by patching the saved PC ([sp+56]) past the
#: faulting instruction, then proves register/thunk restore.
RECOVER_SRC = f"""
        .text
main:   movi r0, 11          ; sigaction(SIGSEGV, handler)
        movi r1, 11
        movi r2, handler
        syscall
        movi r6, 7
        cmp  r6, 7           ; set Z; must survive the handler
        ld   r0, [{BAD:#x}]  ; faults; handler resumes at `after`
after:  jnz  bad_flags
        push r6
        call putint          ; prints 7: r6 restored
        addi sp, 4
        movi r0, 0
        push r0
        call exit
bad_flags:
        movi r0, 33
        push r0
        call exit
handler:
        ld   r1, [sp+64]     ; siginfo: faulting address
        push r1
        call putint
        addi sp, 4
        ld   r1, [sp+68]     ; siginfo: access code (1 = read)
        push r1
        call putint
        addi sp, 4
        movi r1, after
        st   [sp+56], r1     ; patch saved pc: resume after the load
        ret
"""


class TestHandlerRecovery:
    def test_handler_sees_siginfo_and_resumes(self):
        nat, dflt, perf = run_three(RECOVER_SRC)
        want = f"{BAD - (1 << 32)}\n1\n7\n"  # putint prints signed
        assert nat.stdout == want
        assert dflt.stdout == want
        assert perf.stdout == want
        assert nat.exit_code == dflt.exit_code == perf.exit_code == 0

    def test_handler_recovery_under_codegen_tiers(self):
        want = f"{BAD - (1 << 32)}\n1\n7\n"
        for engine, res in run_codegen_engines(RECOVER_SRC).items():
            assert res.stdout == want, engine
            assert res.exit_code == 0, engine

    def test_midblock_registers_committed_at_fault(self):
        # The movi writes precede the fault inside one block; the handler
        # must see them committed in the saved frame even though opt2 may
        # have sunk the PUTs.
        src = f"""
        .text
main:   movi r0, 11
        movi r1, 11
        movi r2, handler
        syscall
        movi r6, 41
        inc  r6              ; r6 = 42, same block as the fault
        ld   r0, [{BAD:#x}]
        halt
handler:
        ld   r1, [sp+32]     ; saved r6
        push r1
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
"""
        nat, dflt, perf = run_three(src)
        assert nat.stdout == dflt.stdout == perf.stdout == "42\n"
        for engine, res in run_codegen_engines(src).items():
            assert res.stdout == "42\n", engine

    def test_nested_fault_in_handler(self):
        # A SIGFPE handler faults with SIGSEGV; the nested handler patches
        # the *inner* frame's saved pc, both sigreturns unwind in order.
        src = f"""
        .text
main:   movi r0, 11
        movi r1, 8           ; SIGFPE
        movi r2, fpe_h
        syscall
        movi r0, 11
        movi r1, 11          ; SIGSEGV
        movi r2, segv_h
        syscall
        movi r0, 9
        movi r1, 0
        divu r0, r1          ; -> fpe_h
        halt
fpe_h:
        ld   r2, [{BAD:#x}]  ; nested fault -> segv_h
fpe_resume:
        pushi msg1
        call puts
        addi sp, 4
        movi r1, done
        st   [sp+56], r1     ; outer frame: skip the faulting divu block
        ret
segv_h:
        movi r1, fpe_resume
        st   [sp+56], r1
        ret
done:
        movi r0, 0
        push r0
        call exit
        .data
msg1:   .asciz "unwound"
"""
        nat, dflt, perf = run_three(src)
        assert "unwound" in nat.stdout
        assert nat.stdout == dflt.stdout == perf.stdout
        assert nat.exit_code == dflt.exit_code == perf.exit_code == 0
        for engine, res in run_codegen_engines(src).items():
            assert res.stdout == nat.stdout, engine
            assert res.exit_code == 0, engine

    def test_handler_modifies_saved_registers(self, run_both):
        # Writes into the frame become the restored register values.
        src = """
        .text
main:   movi r0, 11
        movi r1, 8
        movi r2, handler
        syscall
        movi r6, 1
        movi r0, 1
        movi r1, 0
        divu r0, r1
resume: push r6
        call putint
        addi sp, 4
        movi r0, 0
        ret
handler:
        movi r1, 1234
        st   [sp+32], r1     ; saved r6 := 1234
        movi r1, resume
        st   [sp+56], r1
        ret
"""
        nat, res = run_both(src)
        assert nat.stdout.strip() == "1234"


class TestSignalLatencyPerf:
    def test_alarm_observed_mid_quantum_under_chaining(self):
        # A self-chaining wait loop must not outrun a pending SIGALRM by a
        # whole dispatch quantum: the poll hook bounds the latency to
        # --signal-poll blocks.
        src = """
        .text
main:   movi r0, 11
        movi r1, 14
        movi r2, handler
        syscall
        movi r0, 13          ; alarm in 5000 guest instructions
        movi r1, 5000
        syscall
wait:   ld   r1, [flag]
        test r1, r1
        jz   wait
        movi r0, 0
        push r0
        call exit
handler:
        sti  [flag], 1
        ret
        .data
flag:   .word 0
"""
        res = run_tool(
            "none", asm_image(src),
            options=Options(log_target="capture", perf=True,
                            dispatch_quantum=10**6, thread_timeslice=10**6),
            max_blocks=200_000,
        )
        assert res.exit_code == 0, res.outcome
        assert res.outcome.stopped_reason is None
        # ~1700 wait-loop blocks until the timer is due, observed within
        # one poll interval; far below the quantum (and the budget).
        assert res.outcome.blocks_executed < 50_000


class TestCleanStops:
    def test_deadlock_is_a_clean_outcome(self):
        src = """
        .text
main:   movi r0, 16          ; thread_join(99): never satisfied
        movi r1, 99
        syscall
        halt
"""
        res = vg(src)
        assert res.exit_code == ExitCode.DEADLOCK
        assert res.outcome.stopped_reason == "deadlock"
        assert "deadlocked" in res.log

    def test_block_budget_is_a_clean_outcome(self):
        src = """
        .text
main:   jmp main
"""
        res = run_tool("none", asm_image(src),
                       options=Options(log_target="capture"), max_blocks=50)
        assert res.exit_code == ExitCode.BLOCK_BUDGET
        assert res.outcome.stopped_reason == "block-budget"


class TestHandlerValidation:
    def test_unmapped_handler_falls_back_to_default(self):
        # The registration succeeds (matching real sigaction), but at
        # delivery the bogus address is rejected and SIGTERM is fatal.
        src = f"""
        .text
main:   movi r0, 11
        movi r1, 15          ; SIGTERM
        movi r2, {BAD:#x}    ; not in executable memory
        syscall
        movi r0, 12          ; kill(self, SIGTERM)
        movi r1, 0
        movi r2, 15
        syscall
wait:   jmp wait
"""
        for perf in (False, True):
            res = vg(src, perf=perf)
            assert res.exit_code == ExitCode.for_signal(SIGTERM)
            assert res.outcome.fatal_signal == SIGTERM
            assert "not in executable memory" in res.log

    def test_sigkill_fatal_despite_stale_handler_entry(self):
        # A corrupt handler-table entry for SIGKILL must not make it
        # catchable: delivery is unconditionally fatal.
        class StaleKill(Tool):
            name = "stalekill"

            def post_clo_init(self):
                # White-box: plant a stale handler entry the syscall
                # interface refuses to create.
                self.core.kernel.handlers[SIGKILL] = 0x1000

        src = """
        .text
main:   movi r0, 12          ; kill(self, SIGKILL)
        movi r1, 0
        movi r2, 9
        syscall
wait:   jmp wait
"""
        res = run_tool(StaleKill(), asm_image(src),
                       options=Options(log_target="capture"))
        assert res.exit_code == ExitCode.for_signal(SIGKILL)
        assert res.outcome.fatal_signal == SIGKILL
