"""Tests for IR types, expressions, statements, blocks, values and pretty
printing."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    IRSB,
    Binop,
    CCall,
    Const,
    Dirty,
    Exit,
    Get,
    IMark,
    ITE,
    IRTypeError,
    JumpKind,
    Load,
    Put,
    RdTmp,
    StateFx,
    Store,
    Ty,
    Unop,
    WrTmp,
    c8,
    c32,
    const,
    fmt_expr,
    fmt_irsb,
    fmt_stmt,
)
from repro.ir.expr import expr_size
from repro.ir.types import fits, mask, sign_extend
from repro.ir.values import from_bytes, to_bytes, zero


class TestTypes:
    def test_bits_and_sizes(self):
        assert Ty.I1.bits == 1 and Ty.I1.size == 1
        assert Ty.I32.bits == 32 and Ty.I32.size == 4
        assert Ty.V128.bits == 128 and Ty.V128.size == 16
        assert Ty.F64.size == 8

    def test_masks(self):
        assert Ty.I8.mask == 0xFF
        with pytest.raises(ValueError):
            Ty.F64.mask

    def test_fits(self):
        assert fits(Ty.I8, 255) and not fits(Ty.I8, 256)
        assert fits(Ty.F64, 1.5) and not fits(Ty.F64, 1)
        assert not fits(Ty.I32, True)  # bools are not integers here

    @given(st.integers(-(1 << 40), 1 << 40))
    def test_sign_extend_roundtrip(self, v):
        assert mask(32, sign_extend(32, v)) == mask(32, v)


class TestValues:
    @given(st.integers(0, 0xFFFFFFFF))
    def test_i32_roundtrip(self, v):
        assert from_bytes(Ty.I32, to_bytes(Ty.I32, v)) == v

    @given(st.floats(allow_nan=False))
    def test_f64_roundtrip(self, v):
        assert from_bytes(Ty.F64, to_bytes(Ty.F64, v)) == v

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            from_bytes(Ty.I32, b"\x00")

    def test_zero(self):
        assert zero(Ty.F64) == 0.0 and isinstance(zero(Ty.F64), float)
        assert zero(Ty.I32) == 0


class TestExpressions:
    def test_const_validation(self):
        with pytest.raises(ValueError):
            Const(Ty.I8, 256)
        assert const(Ty.I8, 0x1FF).value == 0xFF  # convenience masks

    def test_unop_arity_checked(self):
        with pytest.raises(ValueError):
            Unop("Add32", c32(1))
        with pytest.raises(ValueError):
            Binop("Not32", c32(1), c32(2))

    def test_atoms(self):
        assert c32(1).is_atom() and RdTmp(0).is_atom()
        assert not Get(0, Ty.I32).is_atom()

    def test_expr_size(self):
        e = Binop("Add32", Binop("Add32", c32(1), c32(2)), c32(3))
        assert expr_size(e) == 5


class TestBlocks:
    def test_new_tmp_and_types(self):
        sb = IRSB()
        t0 = sb.new_tmp(Ty.I32)
        t1 = sb.new_tmp(Ty.F64)
        assert t0 != t1
        assert sb.type_of_tmp(t0) is Ty.I32
        assert sb.type_of(RdTmp(t1)) is Ty.F64
        assert sb.type_of(Binop("Add32", c32(1), c32(2))) is Ty.I32
        assert sb.type_of(ITE(const(Ty.I1, 1), c32(1), c32(2))) is Ty.I32

    def test_unknown_tmp_raises(self):
        with pytest.raises(IRTypeError):
            IRSB().type_of_tmp(42)

    def test_assign_new_emits(self):
        sb = IRSB()
        r = sb.assign_new(Binop("Add32", c32(1), c32(2)))
        assert isinstance(r, RdTmp)
        assert isinstance(sb.stmts[0], WrTmp)

    def test_num_real_stmts_skips_noops(self):
        from repro.ir import NoOp

        sb = IRSB()
        sb.add(NoOp())
        sb.add(IMark(0x100, 4))
        assert sb.num_real_stmts() == 1


class TestPrettyPrinter:
    """The printed forms must match the paper's figures' syntax."""

    def test_figure1_expression_shape(self):
        e = Binop(
            "Add32",
            Binop("Add32", Get(12, Ty.I32), Binop("Shl32", Get(0, Ty.I32), c8(2))),
            c32(0xFFFFC0CC),
        )
        assert (
            fmt_expr(e)
            == "Add32(Add32(GET:I32(12),Shl32(GET:I32(0),0x2:I8)),0xFFFFC0CC:I32)"
        )

    def test_put_load_store(self):
        assert fmt_stmt(Put(0, Load(Ty.I32, RdTmp(0)))) == "PUT(0) = LDle:I32(t0)"
        assert fmt_stmt(Store(RdTmp(1), c32(5))) == "STle(t1) = 0x5:I32"

    def test_imark(self):
        assert fmt_stmt(IMark(0x24F275, 7)) == "------ IMark(0x24F275, 7) ------"

    def test_dirty_with_annotations(self):
        s = Dirty(
            "helperc_value_check4_fail",
            (),
            guard=RdTmp(27),
            state_fx=(StateFx(False, 16, 4), StateFx(False, 60, 4)),
        )
        out = fmt_stmt(s)
        assert "DIRTY t27" in out
        assert "RdFX-gst(16,4)" in out and "RdFX-gst(60,4)" in out
        assert out.endswith("::: helperc_value_check4_fail()")

    def test_goto_line(self):
        sb = IRSB()
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.next = RdTmp(t)
        sb.jumpkind = JumpKind.Boring
        out = fmt_irsb(sb)
        assert out.splitlines()[-1].strip() == "goto {Boring} t0"

    def test_exit_statement(self):
        s = Exit(RdTmp(3), 0x1000, JumpKind.Boring)
        assert fmt_stmt(s) == "if (t3) goto {Boring} 0x1000"
