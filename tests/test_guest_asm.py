"""Assembler tests: syntax, directives, fixups, errors."""

import pytest

from repro.guest.asm import AsmError, assemble
from repro.guest.encoding import decode


def _decode_all(img):
    seg = img.text_segment
    out = []
    addr = seg.addr
    while addr < seg.end:
        insn = decode(seg.data, addr - seg.addr, addr)
        out.append(insn)
        addr += insn.length
    return out


class TestBasics:
    def test_labels_and_symbols(self):
        img = assemble("a: nop\nb: nop\n")
        assert img.symbols["b"] == img.symbols["a"] + 1

    def test_entry_defaults_to_start_symbol(self):
        img = assemble("  nop\n_start: halt\n")
        assert img.entry == img.symbols["_start"]

    def test_comments_and_blank_lines(self):
        img = assemble("; comment\n\nnop // trailing\n  ; another\n")
        assert len(_decode_all(img)) == 1

    def test_label_and_insn_on_one_line(self):
        img = assemble("x: nop\n")
        assert "x" in img.symbols

    def test_char_literal(self):
        img = assemble("movi r0, 'A'\n")
        assert _decode_all(img)[0].operands[1].value == 65

    def test_negative_immediate(self):
        img = assemble("movi r0, -1\n")
        assert _decode_all(img)[0].operands[1].value == 0xFFFFFFFF


class TestGenericMnemonics:
    def test_alu_form_selection(self):
        img = assemble(
            "add r0, r1\nadd r0, 5\nadd r0, [r1+4]\nadd [r1], r0\n"
        )
        names = [i.mnemonic for i in _decode_all(img)]
        assert names == ["add", "addi", "addm_", "addm"]

    def test_mov_forms(self):
        img = assemble("mov r0, r1\nmov r0, 7\n")
        assert [i.mnemonic for i in _decode_all(img)] == ["mov", "movi"]

    def test_shift_forms(self):
        img = assemble("shl r0, 3\nshl r0, r1\n")
        assert [i.mnemonic for i in _decode_all(img)] == ["shli", "shl"]

    def test_jcc_synonyms(self):
        img = assemble("x: jne x\n jltu x\n jz x\n")
        conds = [i.operands[0].code for i in _decode_all(img)]
        assert conds == [0x1, 0x2, 0x0]

    def test_setcc(self):
        img = assemble("setz r0\nsetgt r1\n")
        insns = _decode_all(img)
        assert insns[0].mnemonic == "setcc"
        assert insns[0].operands[1].code == 0x0

    def test_push_call_jmp_register_forms(self):
        img = assemble("x: push 5\n call r1\n jmp r2\n call x\n jmp x\n")
        names = [i.mnemonic for i in _decode_all(img)]
        assert names == ["pushi", "callr", "jmpr", "call", "jmp"]


class TestMemoryOperands:
    def test_addressing_modes(self):
        img = assemble(
            "ld r0, [r1]\nld r0, [r1+8]\nld r0, [r1+r2*4]\n"
            "ld r0, [r1+r2*4+12]\nld r0, [0x2000]\nld r0, [r1-4]\n"
        )
        mems = [i.operands[1] for i in _decode_all(img)]
        assert (mems[0].base, mems[0].disp) == (1, 0)
        assert mems[1].disp == 8
        assert (mems[2].index, mems[2].scale) == (2, 4)
        assert mems[3].disp == 12
        assert (mems[4].base, mems[4].disp) == (None, 0x2000)
        assert mems[5].disp == 0xFFFFFFFC  # -4 wrapped

    def test_symbol_in_memory_operand(self):
        img = assemble("x: ld r0, [buf+r1*2+4]\n.data\nbuf: .word 0\n")
        mem = _decode_all(img)[0].operands[1]
        assert mem.disp == img.symbols["buf"] + 4


class TestDirectives:
    def test_data_directives(self):
        img = assemble(
            ".data\nb: .byte 1, 2, 255\nw: .word 0x1234, sym\n"
            "s: .asciz \"hi\\n\"\nz: .space 5\n.align 8\nq: .double 1.5\n"
            "sym: .word 0\n"
        )
        data = img.segments[-1]
        base = data.addr
        assert data.data[:3] == b"\x01\x02\xff"
        woff = img.symbols["w"] - base
        assert data.data[woff : woff + 4] == (0x1234).to_bytes(4, "little")
        # the second word holds sym's address (a fixup)
        got = int.from_bytes(data.data[woff + 4 : woff + 8], "little")
        assert got == img.symbols["sym"]
        assert data.data[img.symbols["s"] - base :][:4] == b"hi\n\x00"
        assert img.symbols["q"] % 8 == 0

    def test_equ(self):
        img = assemble(".equ K, 42\nmovi r0, K\nmovi r1, K+1\n")
        insns = _decode_all(img)
        assert insns[0].operands[1].value == 42
        assert insns[1].operands[1].value == 43

    def test_text_data_separate_segments(self):
        img = assemble("nop\n.data\nx: .word 1\n")
        assert len(img.segments) == 2
        text, data = img.segments
        assert "x" in text.perms or data.addr > text.end - 1
        assert "w" in data.perms and "x" in text.perms


class TestErrors:
    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("jmp nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="redefined"):
            assemble("a: nop\na: nop\n")

    def test_wrong_operand_kind(self):
        with pytest.raises(AsmError, match="expected integer register"):
            assemble("pop 5\n")

    def test_instructions_in_data_section(self):
        with pytest.raises(AsmError, match="outside .text"):
            assemble(".data\nnop\n")

    def test_bad_align(self):
        with pytest.raises(AsmError, match="power of two"):
            assemble(".align 3\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError, match="f.s:2"):
            assemble("nop\nbogus_mnemonic r0\n", filename="f.s")


class TestDebugInfo:
    def test_line_info_recorded(self):
        img = assemble("nop\nnop\n", filename="prog.s")
        li = img.line_at(img.entry + 1)
        assert li is not None and li.line == 2 and li.filename == "prog.s"

    def test_symbol_at(self):
        img = assemble("f: nop\nnop\ng: nop\n")
        assert img.symbol_at(img.symbols["f"] + 1) == ("f", 1)
        assert img.symbol_at(img.symbols["g"]) == ("g", 0)
