"""Memcheck tests: shadow memory, error detection, precision, heap
tracking, leak checking, and client requests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Options
from repro.core.valgrind import Valgrind
from repro.tools.memcheck import (
    MC_CHECK_MEM_IS_ADDRESSABLE,
    MC_CHECK_MEM_IS_DEFINED,
    MC_COUNT_ERRORS,
    MC_DO_LEAK_CHECK,
    MC_MAKE_MEM_DEFINED,
    MC_MAKE_MEM_NOACCESS,
    MC_MAKE_MEM_UNDEFINED,
    Memcheck,
    ShadowMemory,
)
from repro.core.clientreq import clreq_asm

from helpers import asm_image, vg


def mc(src, **kw):
    return vg(src, "memcheck", **kw)


def kinds(res):
    return [e.kind for e in res.errors]


class TestShadowMemory:
    def test_default_noaccess(self):
        sm = ShadowMemory()
        assert sm.get_abit(0x1234) == 0
        assert sm.get_vbyte(0x1234) == 0xFF
        assert sm.check_addressable(0x1000, 4) == 0x1000

    def test_make_defined_undefined_noaccess(self):
        sm = ShadowMemory()
        sm.make_defined(0x1000, 16)
        assert sm.check_addressable(0x1000, 16) is None
        assert sm.load_vbits(0x1000, 4) == 0
        sm.make_undefined(0x1004, 4)
        assert sm.load_vbits(0x1004, 4) == 0xFFFFFFFF
        assert sm.first_undefined(0x1000, 16) == 0x1004
        sm.make_noaccess(0x1008, 4)
        assert sm.check_addressable(0x1000, 16) == 0x1008

    def test_store_load_vbits_partial(self):
        sm = ShadowMemory()
        sm.make_defined(0x1000, 8)
        sm.store_vbits(0x1001, 2, 0x00FF)  # byte 1 undefined, byte 2 defined
        assert sm.get_vbyte(0x1001) == 0xFF
        assert sm.get_vbyte(0x1002) == 0x00
        assert sm.load_vbits(0x1000, 4) == 0x0000FF00

    def test_page_crossing(self):
        sm = ShadowMemory()
        sm.make_defined(0x1FFC, 8)  # crosses a 4K page
        assert sm.check_addressable(0x1FFC, 8) is None
        sm.store_vbits(0x1FFE, 4, 0xFFFFFFFF)
        assert sm.load_vbits(0x1FFE, 4) == 0xFFFFFFFF

    def test_copy_range(self):
        sm = ShadowMemory()
        sm.make_defined(0x1000, 8)
        sm.store_vbits(0x1000, 4, 0x000000FF)
        sm.make_undefined(0x2000, 8)
        sm.copy_range(0x1000, 0x2000, 8)
        assert sm.load_vbits(0x2000, 4) == 0x000000FF
        assert sm.check_addressable(0x2000, 8) is None

    def test_distinguished_pages_stay_shared(self):
        sm = ShadowMemory()
        sm.make_defined(0x10000, 0x3000)
        na, df, pv = sm.stats()
        assert df == 3 and pv == 0  # whole pages use the shared marker
        sm.store_vbits(0x10000, 4, 1)  # forces one copy-on-write
        na, df, pv = sm.stats()
        assert pv == 1 and df == 2

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0x1000, 0x3000),
        st.integers(1, 8),
        st.integers(0, (1 << 64) - 1),
    )
    def test_vbits_roundtrip(self, addr, size, bits):
        sm = ShadowMemory()
        sm.make_defined(0x0, 0x5000)
        vbits = bits & ((1 << (8 * size)) - 1)
        sm.store_vbits(addr, size, vbits)
        assert sm.load_vbits(addr, size) == vbits


class TestErrorDetection:
    def test_uninitialised_condition(self):
        res = mc("""
        .text
main:   subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        cmpi r0, 1
        je   x
x:      movi r0, 0
        ret
""")
        assert "UninitCondition" in kinds(res)

    def test_uninitialised_value_as_address(self):
        res = mc("""
        .text
main:   subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        andi r0, 0xFF        ; partially defined is still undefined
        ld   r1, [buf+r0]
        movi r0, 0
        ret
        .data
buf:    .space 512
""")
        assert "UninitValue" in kinds(res)

    def test_definedness_flows_through_arithmetic(self):
        # undef + defined -> undef; xor with itself -> defined (Memcheck's
        # improved rules make x^x fully defined).
        res = mc("""
        .text
main:   subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        xor  r0, r0          ; now defined (0)
        cmpi r0, 0
        je   ok
ok:     movi r0, 0
        ret
""")
        assert kinds(res) == []

    def test_and_with_defined_zero_is_defined(self):
        res = mc("""
        .text
main:   subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        andi r0, 0           ; defined 0 wins
        cmpi r0, 0
        je   ok
ok:     movi r0, 0
        ret
""")
        assert kinds(res) == []

    def test_copy_through_memory_preserves_undefinedness(self):
        res = mc("""
        .text
main:   subi sp, 8
        ld   r0, [sp]        ; undefined
        st   [tmp], r0       ; stays undefined in memory
        ld   r1, [tmp]
        addi sp, 8
        test r1, r1
        jz   x
x:      movi r0, 0
        ret
        .data
tmp:    .word 0
""")
        assert kinds(res) == ["UninitCondition"]

    def test_stack_frames_become_undefined_again(self):
        # A callee leaves a value; a new frame must be undefined anyway.
        res = mc("""
        .text
main:   call f
        call g
        movi r0, 0
        ret
f:      subi sp, 8
        sti  [sp], 99        ; initialise the slot
        addi sp, 8
        ret
g:      subi sp, 8
        ld   r0, [sp]        ; same address, but a NEW allocation
        addi sp, 8
        cmpi r0, 99
        je   x
x:      ret
""")
        assert "UninitCondition" in kinds(res)


class TestHeapChecking:
    def test_overrun_read_and_write(self):
        res = mc("""
        .text
main:   pushi 16
        call malloc
        addi sp, 4
        ld   r1, [r0+16]     ; 1 past the end
        sti  [r0+20], 5      ; further past
        push r0
        call free
        addi sp, 4
        movi r0, 0
        ret
""")
        ks = kinds(res)
        assert "InvalidRead" in ks and "InvalidWrite" in ks

    def test_underrun(self):
        res = mc("""
        .text
main:   pushi 16
        call malloc
        addi sp, 4
        ld   r1, [r0-4]      ; red zone before the block
        push r0
        call free
        addi sp, 4
        movi r0, 0
        ret
""")
        assert kinds(res) == ["InvalidRead"]
        assert "before a block of size 16" in res.errors[0].message

    def test_use_after_free(self):
        res = mc("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r6, r0
        push r6
        call free
        addi sp, 4
        ld   r1, [r6]
        movi r0, 0
        ret
""")
        assert kinds(res) == ["InvalidRead"]
        assert "freed" in res.errors[0].message

    def test_double_and_invalid_free(self):
        res = mc("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r6, r0
        push r6
        call free
        addi sp, 4
        push r6
        call free            ; double free
        addi sp, 4
        pushi 0x1234
        call free            ; free of a non-heap address
        addi sp, 4
        movi r0, 0
        ret
""")
        assert kinds(res).count("InvalidFree") == 2

    def test_calloc_is_defined_malloc_is_not(self):
        res = mc("""
        .text
main:   pushi 4
        pushi 2
        call calloc
        addi sp, 8
        ld   r1, [r0]        ; calloc memory is defined (zero)
        cmpi r1, 0
        je   ok1
ok1:    pushi 8
        call malloc
        addi sp, 4
        ld   r1, [r0]        ; malloc memory is undefined
        cmpi r1, 0
        je   ok2
ok2:    movi r0, 0
        ret
""")
        assert kinds(res) == ["UninitCondition"]  # only the malloc'd read

    def test_realloc_preserves_contents_and_shadow(self):
        res = mc("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r6, r0
        sti  [r6], 42        ; initialise first word only
        pushi 64
        push r6
        call realloc
        addi sp, 8
        mov  r6, r0
        ld   r1, [r6]        ; defined: copied
        cmpi r1, 42
        je   ok
ok:     ld   r1, [r6+4]      ; copied but never initialised
        test r1, r1
        jz   x
x:      push r6
        call free
        addi sp, 4
        movi r0, 0
        ret
""")
        assert kinds(res) == ["UninitCondition"]

    def test_syscall_param_checking(self):
        # write() with an uninitialised buffer: the R4 events catch it.
        res = mc("""
        .text
main:   pushi 16
        call malloc
        addi sp, 4
        movi r2, 0
        add  r2, r0          ; buf
        movi r0, 3           ; write
        movi r1, 1
        movi r3, 16
        syscall
        movi r0, 0
        ret
""")
        assert "SyscallParam" in kinds(res)
        assert any("uninitialised" in e.message for e in res.errors)


class TestLeaks:
    LEAKY = """
        .text
main:   pushi 100
        call malloc
        addi sp, 4
        st   [keep], r0      ; reachable
        pushi 50
        call malloc
        addi sp, 4
        movi r0, 0           ; pointer discarded: lost
        ret
        .data
keep:   .word 0
"""

    def test_leak_summary(self):
        res = mc(self.LEAKY)
        leaks = res.tool._leak_result
        assert leaks["definitely_lost_bytes"] == 50
        assert leaks["definitely_lost_blocks"] == 1
        assert leaks["still_reachable_bytes"] == 100
        assert "LEAK SUMMARY" in res.log

    def test_pointer_in_register_counts_as_root(self):
        res = mc("""
        .text
main:   pushi 64
        call malloc
        addi sp, 4
        mov  r7, r0          ; keep in a register only
        movi r0, 0
        ret
""")
        assert res.tool._leak_result["definitely_lost_bytes"] == 0

    def test_transitive_reachability(self):
        res = mc("""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r6, r0
        st   [keep], r6
        pushi 24
        call malloc
        addi sp, 4
        st   [r6], r0        ; second block only reachable via the first
        movi r0, 0
        ret
        .data
keep:   .word 0
""")
        assert res.tool._leak_result["still_reachable_bytes"] == 32
        assert res.tool._leak_result["definitely_lost_bytes"] == 0

    def test_leak_check_off(self):
        res = vg(self.LEAKY, "memcheck",
                 options=Options(log_target="capture",
                                 tool_options=["--leak-check=no"]))
        assert res.tool._leak_result is None


class TestClientRequests:
    def test_make_mem_defined_suppresses_error(self):
        src = f"""
        .text
main:   subi sp, 8
{clreq_asm(MC_MAKE_MEM_DEFINED, "0", "0")}
        mov  r1, sp
        movi r0, {MC_MAKE_MEM_DEFINED:#x}
        movi r2, 8
        clreq
        ld   r0, [sp]
        addi sp, 8
        cmpi r0, 0
        je   x
x:      movi r0, 0
        ret
"""
        res = mc(src)
        assert kinds(res) == []

    def test_check_and_count_requests(self):
        src = f"""
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        mov  r1, r0
        movi r0, {MC_CHECK_MEM_IS_DEFINED:#x}
        movi r2, 8
        clreq                 ; returns first undefined byte (== block)
        push r0
        call putint
        addi sp, 4
        movi r0, {MC_COUNT_ERRORS:#x}
        clreq
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        res = mc(src)
        lines = res.stdout.split()
        assert int(lines[0]) != 0  # undefined byte found
        assert lines[1] == "0"     # and that's not an "error"


class TestPrecision:
    def test_clean_workloads_have_no_errors(self):
        # Regression net: heavy, realistic programs must be error-free.
        from repro.workloads.suite import build

        for name in ("bzip2", "vortex", "mesa"):
            wl = build(name, scale=0.1)
            res = Valgrind(Memcheck(), Options(log_target="capture")).run(wl.image)
            assert kinds(res) == [], (name, kinds(res))

    def test_error_has_symbolised_stack(self):
        res = mc("""
        .text
main:   call helper
        movi r0, 0
        ret
helper: subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        cmpi r0, 0
        je   x
x:      ret
""")
        err = res.errors[0]
        syms = [f.symbol for f in err.stack]
        assert "helper" in syms and "main" in syms
