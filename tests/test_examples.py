"""The example scripts must run cleanly — they are executable docs."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "name",
    ["quickstart", "memcheck_demo", "taint_tracking", "cache_profile",
     "custom_tool"],
)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_shows_figure1_style_ir(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "IMark" in out and "GET:I32" in out
    assert "dispatcher hit rate" in out


def test_memcheck_demo_finds_the_bug_zoo(capsys):
    runpy.run_path(str(EXAMPLES / "memcheck_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    for needle in ("InvalidRead", "InvalidFree", "definitely lost",
                   "suppressed"):
        assert needle in out, needle


def test_taint_tracking_raises_alert(capsys):
    runpy.run_path(str(EXAMPLES / "taint_tracking.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "ALERT" in out and "tainted" in out.lower()


def test_cache_profile_shows_locality_gap(capsys):
    runpy.run_path(str(EXAMPLES / "cache_profile.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "more often" in out
