"""Deep integration tests: tool + core feature interactions the paper
calls out as the hard cases — shadow state across mremap, threads,
signals; suppressions end-to-end; trace output."""

import pytest

from repro import Options, Valgrind

from helpers import asm_image, native, vg


class TestMemcheckWithMemorySyscalls:
    def test_mremap_copies_shadow_state(self, run_both):
        """R6: "mremap can cause memory values to be copied, in which case
        the corresponding shadow memory values may have to be copied as
        well" — a moved mapping keeps both its data and its definedness."""
        src = """
        .text
main:   movi r0, 7           ; mmap(0, 4096)
        movi r1, 0
        movi r2, 4096
        movi r3, 6
        syscall
        mov  r6, r0
        sti  [r6], 0xABCD     ; initialise the first word only
        movi r0, 7            ; mmap the next page to force mremap to move
        mov  r1, r6
        addi r1, 4096
        movi r2, 4096
        movi r3, 6
        syscall
        movi r0, 9            ; mremap(r6, 4096, 16384)
        mov  r1, r6
        movi r2, 4096
        movi r3, 16384
        syscall
        mov  r6, r0           ; the moved block
        ld   r1, [r6]         ; defined: shadow was copied with the data
        push r1
        call putint
        addi sp, 4
        ld   r2, [r6+4]       ; the undefined word moved too
        cmpi r2, 0
        je   x
x:      movi r0, 0
        ret
"""
        # Plant an *undefined* value at [r6+4] before the move: splice an
        # uninitialised stack read + store after the first mmap.
        src = src.replace(
            "        sti  [r6], 0xABCD     ; initialise the first word only\n",
            "        sti  [r6], 0xABCD     ; initialise the first word only\n"
            "        subi sp, 8\n"
            "        ld   r1, [sp]         ; undefined\n"
            "        addi sp, 8\n"
            "        st   [r6+4], r1       ; [r6+4] is now undefined\n",
        )
        nat, res = run_both(src, tool="memcheck")
        assert nat.stdout.strip() == str(0xABCD)
        kinds = [e.kind for e in res.errors]
        # Exactly one complaint: the branch on the still-undefined word the
        # mremap moved; the defined word stayed defined.
        assert kinds == ["UninitCondition"]

    def test_munmap_makes_memory_unaddressable(self):
        src = """
        .text
main:   movi r0, 7
        movi r1, 0
        movi r2, 4096
        movi r3, 3
        syscall
        mov  r6, r0
        sti  [r6], 1
        movi r0, 8           ; munmap
        mov  r1, r6
        movi r2, 4096
        syscall
        ld   r1, [r6]        ; faults (and Memcheck flags it first)
        ret
"""
        res = vg(src, "memcheck")
        assert res.outcome.fatal_signal == 11
        assert "InvalidRead" in [e.kind for e in res.errors]


class TestMemcheckWithThreads:
    def test_thread_stacks_and_shadow_state(self, run_both):
        """Shadow loads/stores must stay consistent across thread switches
        (the serialisation guarantee of Section 3.14)."""
        src = """
        .text
main:   movi  r0, 14
        movi  r1, worker
        movi  r2, 0
        movi  r3, 100
        syscall
        mov   r6, r0
        movi  r2, 0
        movi  r3, 50
mloop:  add   r2, r3
        dec   r3
        jnz   mloop
        mov   r1, r6
        movi  r0, 16          ; join
        syscall
        add   r0, r2
        push  r0
        call  putint
        addi  sp, 4
        movi  r0, 0
        ret
worker: ld    r1, [sp+4]
        movi  r2, 0
        movi  r3, 50
wloop:  add   r2, r1
        dec   r3
        jnz   wloop
        mov   r1, r2
        movi  r0, 15
        syscall
        halt
"""
        nat, res = run_both(src, tool="memcheck",
                            options=Options(log_target="capture",
                                            thread_timeslice=7))
        assert nat.stdout.strip() == str(100 * 50 + sum(range(1, 51)))
        assert res.errors == []

    def test_uninitialised_read_from_other_threads_stack(self):
        src = """
        .text
main:   movi  r0, 14
        movi  r1, worker
        movi  r2, 0
        movi  r3, 1
        syscall
        mov   r1, r0
        movi  r0, 16
        syscall
        movi  r0, 0
        ret
worker: subi  sp, 16
        ld    r1, [sp+8]     ; fresh (undefined) thread-stack slot
        addi  sp, 16
        cmpi  r1, 0
        je    w1
w1:     movi  r1, 0
        movi  r0, 15
        syscall
        halt
"""
        res = vg(src, "memcheck")
        assert "UninitCondition" in [e.kind for e in res.errors]


class TestMemcheckWithSignals:
    def test_signal_frame_is_defined(self, run_both):
        """Signal delivery writes a kernel frame onto the stack; the core's
        post_mem_write event must mark it defined or the handler would
        trigger false positives."""
        src = """
        .text
main:   movi r0, 11
        movi r1, 14
        movi r2, handler
        syscall
        movi r0, 13
        movi r1, 300
        syscall
wait:   ld   r1, [flag]
        test r1, r1
        jz   wait
        movi r0, 0
        ret
handler:
        ld   r1, [sp+4]      ; the signal number argument: defined
        st   [flag], r1
        ret
        .data
flag:   .word 0
"""
        nat, res = run_both(src, tool="memcheck")
        assert res.errors == []


class TestSuppressionsEndToEnd:
    def test_suppression_file_via_options(self, tmp_path):
        supp = tmp_path / "x.supp"
        supp.write_text("""
{
   silence-main-uninit
   memcheck:UninitCondition
   fun:main
}
""")
        src = """
        .text
main:   subi sp, 8
        ld   r0, [sp]
        addi sp, 8
        cmpi r0, 0
        je   x
x:      movi r0, 0
        ret
"""
        img = asm_image(src)
        noisy = vg(img, "memcheck")
        assert len(noisy.errors) == 1
        quiet = vg(img, "memcheck",
                   options=Options(log_target="capture",
                                   suppressions=[str(supp)]))
        assert quiet.errors == []
        assert quiet.core.error_mgr.suppressed_counts == {
            "silence-main-uninit": 1
        }


class TestTraceTranslations:
    def test_trace_prints_ir(self, capsys):
        src = "main: movi r0, 0\n ret\n"
        vg(src, options=Options(log_target="capture", trace_translations=True))
        out = capsys.readouterr().out
        assert "==== translation at" in out
        assert "IMark" in out and "goto" in out


class TestHobbesOnWorkloads:
    @pytest.mark.parametrize("name", ["mcf", "vortex"])
    def test_pointer_heavy_workloads_are_clean(self, name):
        """The pointer-chasing workloads use pointers correctly; Hobbes
        must agree (no false positives) and must not perturb them."""
        from repro.workloads.suite import build

        wl = build(name, scale=0.1)
        nat = native(wl.image)
        res = vg(wl.image, "hobbes")
        assert res.stdout == nat.stdout
        assert [e.kind for e in res.errors] == []
