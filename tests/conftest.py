"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from helpers import asm_image, native, vg


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink the randomized suites (CI replay-matrix budget)",
    )


def pytest_configure(config):
    # Exported as an env var so test modules can read it at import time
    # (hypothesis @settings decorators are evaluated during collection).
    if config.getoption("--quick"):
        os.environ["REPRO_TEST_QUICK"] = "1"


@pytest.fixture
def run_both():
    """Run a program natively and under a tool; assert identical output."""

    def _run(source: str, tool: str = "none", **kw):
        img = asm_image(source)
        nat = native(img, **{k: v for k, v in kw.items() if k in ("argv", "stdin")})
        res = vg(img, tool, **kw)
        assert res.exit_code == nat.exit_code, (
            f"exit codes differ: native {nat.exit_code} vs {tool} {res.exit_code}"
        )
        assert res.stdout == nat.stdout, (
            f"stdout differs under {tool}:\n  native: {nat.stdout!r}\n"
            f"  tooled: {res.stdout!r}"
        )
        return nat, res

    return _run
