"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from helpers import asm_image, native, vg


@pytest.fixture
def run_both():
    """Run a program natively and under a tool; assert identical output."""

    def _run(source: str, tool: str = "none", **kw):
        img = asm_image(source)
        nat = native(img, **{k: v for k, v in kw.items() if k in ("argv", "stdin")})
        res = vg(img, tool, **kw)
        assert res.exit_code == nat.exit_code, (
            f"exit codes differ: native {nat.exit_code} vs {tool} {res.exit_code}"
        )
        assert res.stdout == nat.stdout, (
            f"stdout differs under {tool}:\n  native: {nat.stdout!r}\n"
            f"  tooled: {res.stdout!r}"
        )
        return nat, res

    return _run
