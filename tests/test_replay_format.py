"""Record/replay log format: round-trips, stability, corruption rejection.

The log is the crash-triage artifact — it must be byte-stable (the same
recording always serializes to the same bytes), self-validating (magic,
version, content hash), and loud about contract mismatches.  The
determinism audit at the bottom is the leak detector: two records of the
same run must produce byte-identical logs, including across interpreter
processes with different hash seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Options, run_tool
from repro.core.replay import (
    FORMAT_VERSION,
    MAGIC,
    Event,
    EventLog,
    ReplayDivergence,
    ReplayFormatError,
    build_contract,
    check_contract,
    pack_obj,
    read_uvarint,
    unpack_obj,
    write_uvarint,
)

from .helpers import asm_image

# ---------------------------------------------------------------------------
# varints and the canonical object packer
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**64))
def test_uvarint_round_trip(n):
    buf = bytearray()
    write_uvarint(buf, n)
    m, pos = read_uvarint(bytes(buf), 0)
    assert m == n
    assert pos == len(buf)


def test_uvarint_rejects_negative_and_truncated():
    with pytest.raises(ValueError):
        write_uvarint(bytearray(), -1)
    buf = bytearray()
    write_uvarint(buf, 300)
    with pytest.raises(ReplayFormatError):
        read_uvarint(bytes(buf[:1]), 0)


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_obj = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


@given(_obj)
def test_pack_obj_round_trip(obj):
    packed = pack_obj(obj)
    out = unpack_obj(packed)

    def norm(x):
        if isinstance(x, tuple):
            return [norm(i) for i in x]
        if isinstance(x, list):
            return [norm(i) for i in x]
        if isinstance(x, dict):
            return {k: norm(v) for k, v in x.items()}
        return x

    assert norm(out) == norm(obj)
    # Byte-stability: re-packing the unpacked value is identical.
    assert pack_obj(out) == packed


def test_pack_obj_rejects_unknown_types_and_trailing_bytes():
    with pytest.raises(TypeError):
        pack_obj(object())
    with pytest.raises(ReplayFormatError):
        unpack_obj(pack_obj(1) + b"x")
    with pytest.raises(ReplayFormatError):
        unpack_obj(b"")


# ---------------------------------------------------------------------------
# EventLog wire format
# ---------------------------------------------------------------------------

_events = st.lists(
    st.builds(
        Event,
        kind=st.integers(1, 9),
        tid=st.integers(0, 1000),
        insns=st.integers(0, 2**48),
        args=st.tuples() | st.tuples(st.integers(0, 2**32))
        | st.tuples(*(st.integers(0, 2**32) for _ in range(4))),
        blob=st.binary(max_size=48),
    ),
    max_size=30,
)
_meta = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(st.integers(-1000, 1000), st.text(max_size=12), st.booleans(),
              st.none()),
    max_size=6,
)


@given(meta=_meta, events=_events,
       checkpoints=st.lists(st.binary(min_size=1, max_size=200), max_size=3))
@settings(deadline=None)
def test_event_log_round_trip_and_stability(meta, events, checkpoints):
    log = EventLog(meta)
    for ev in events:
        log.append(ev)
    log.checkpoints.extend(checkpoints)
    data = log.to_bytes()
    loaded = EventLog.from_bytes(data)
    assert loaded.meta == meta
    assert loaded.events == events
    assert loaded.checkpoints == checkpoints
    # Stable re-serialization: load → save → identical bytes.
    assert loaded.to_bytes() == data


def _sample_log() -> EventLog:
    log = EventLog({"contract": {"tool": "none"}})
    log.append(Event(1, 1, 0))
    log.append(Event(2, 1, 10, (3, 0, 0, 2)))
    log.append(Event(9, 1, 20, (0, 0, 0, 4, 4, 0, 0)))
    return log


def test_bad_magic_rejected():
    data = _sample_log().to_bytes()
    with pytest.raises(ReplayFormatError, match="not a record/replay log"):
        EventLog.from_bytes(b"NOPE" + data[len(MAGIC):])
    with pytest.raises(ReplayFormatError, match="too short"):
        EventLog.from_bytes(b"RR")


def test_version_mismatch_rejected():
    import struct

    data = bytearray(_sample_log().to_bytes())
    struct.pack_into("<H", data, len(MAGIC), FORMAT_VERSION + 1)
    with pytest.raises(ReplayFormatError, match="format version"):
        EventLog.from_bytes(bytes(data))


def test_content_hash_tamper_rejected():
    data = bytearray(_sample_log().to_bytes())
    data[-1] ^= 0x01  # flip a bit in the body
    with pytest.raises(ReplayFormatError, match="content hash mismatch"):
        EventLog.from_bytes(bytes(data))


def test_truncated_body_rejected():
    data = _sample_log().to_bytes()
    # Truncation invalidates the hash first; both paths are format errors.
    with pytest.raises(ReplayFormatError):
        EventLog.from_bytes(data[: len(data) - 4])


def test_load_missing_file_is_format_error(tmp_path):
    with pytest.raises(ReplayFormatError, match="cannot read log"):
        EventLog.load(str(tmp_path / "nope.rrlog"))


# ---------------------------------------------------------------------------
# the record/replay contract
# ---------------------------------------------------------------------------


def test_contract_ignores_codegen_but_not_quantum():
    a = build_contract(Options(codegen="closures", perf=False), "none")
    b = build_contract(Options(codegen="pygen", perf=True), "none")
    check_contract(a, b)  # tier changes are fine
    c = build_contract(Options(dispatch_quantum=17), "none")
    with pytest.raises(ReplayFormatError, match="dispatch_quantum"):
        check_contract(a, c)


def test_contract_mismatch_rejected_end_to_end(tmp_path):
    src = """
        .text
main:   movi r0, 5
        ret
"""
    img = asm_image(src)
    log = str(tmp_path / "run.rrlog")
    run_tool("none", img, options=Options(log_target="capture", record=log))
    with pytest.raises(ReplayFormatError, match="incompatible"):
        run_tool("none", img,
                 options=Options(log_target="capture", replay=log,
                                 thread_timeslice=123))


# ---------------------------------------------------------------------------
# real logs: byte-stable round trip + divergence reporting
# ---------------------------------------------------------------------------

_LOOP_SRC = """
        .text
main:   movi r0, 0
        movi r1, 0
loop:   add  r0, r1
        inc  r1
        cmp  r1, 300
        jnz  loop
        andi r0, 255
        ret
"""


def test_recorded_log_reserializes_byte_identically(tmp_path):
    img = asm_image(_LOOP_SRC)
    log_path = str(tmp_path / "run.rrlog")
    run_tool("none", img,
             options=Options(log_target="capture", record=log_path,
                             checkpoint_every=400))
    raw = open(log_path, "rb").read()
    assert EventLog.from_bytes(raw).to_bytes() == raw


def test_divergence_reports_event_index_and_pc(tmp_path):
    img = asm_image(_LOOP_SRC)
    log_path = str(tmp_path / "run.rrlog")
    run_tool("none", img, options=Options(log_target="capture",
                                          record=log_path))
    other = asm_image("""
        .text
main:   movi r0, 9
        ret
""")
    with pytest.raises(ReplayDivergence) as exc_info:
        run_tool("none", other,
                 options=Options(log_target="capture", replay=log_path))
    msg = str(exc_info.value)
    assert "event #" in msg
    assert "pc=" in msg
    assert "guest_insns=" in msg
    assert exc_info.value.index >= 0


# ---------------------------------------------------------------------------
# determinism audit (nondeterminism-leak detector)
# ---------------------------------------------------------------------------

_AUDIT_SRC = """
        .text
main:   movi  r0, 11          ; sigaction(SIGALRM, handler)
        movi  r1, 14
        movi  r2, handler
        syscall
        movi  r0, 13          ; alarm(200)
        movi  r1, 200
        syscall
        movi  r0, 14          ; thread_create(worker, 0, 5)
        movi  r1, worker
        movi  r2, 0
        movi  r3, 5
        syscall
        mov   r6, r0
        movi  r2, 0
        movi  r3, 700
mloop:  add   r2, r3
        dec   r3
        jnz   mloop
        mov   r1, r6
        movi  r0, 16          ; join
        syscall
        add   r0, r2
        ld    r1, [hits]
        add   r0, r1
        andi  r0, 255
        ret
worker: ld    r1, [sp+4]
        movi  r2, 0
wl:     add   r2, r1
        dec   r1
        jnz   wl
        mov   r1, r2
        movi  r0, 15          ; thread_exit
        syscall
handler:
        ld    r1, [hits]
        inc   r1
        st    [hits], r1
        movi  r0, 13          ; re-arm alarm(250)
        movi  r1, 250
        syscall
        ret
.data
hits:   .word 0
"""


def _record_bytes(tmp_dir: str, **opt_kw) -> bytes:
    img = asm_image(_AUDIT_SRC)
    path = os.path.join(tmp_dir, "audit.rrlog")
    run_tool("none", img,
             options=Options(log_target="capture", record=path,
                             thread_timeslice=300, **opt_kw))
    with open(path, "rb") as f:
        return f.read()


def test_double_record_is_byte_identical(tmp_path):
    """Two records of the same threaded/signalling run in one process
    produce byte-identical logs — any divergence is a nondeterminism
    leak in the engine itself."""
    a = _record_bytes(str(tmp_path))
    b = _record_bytes(str(tmp_path))
    assert a == b


def test_double_record_with_checkpoints_is_byte_identical(tmp_path):
    a = _record_bytes(str(tmp_path), checkpoint_every=500)
    b = _record_bytes(str(tmp_path), checkpoint_every=500)
    assert a == b


def test_record_is_stable_across_hash_seeds(tmp_path):
    """Recordings from separate interpreter processes with different
    PYTHONHASHSEED values are byte-identical: nothing in the engine may
    depend on dict/set iteration order seeded by the process hash."""
    prog = tmp_path / "audit.s"
    prog.write_text(_AUDIT_SRC)
    logs = []
    codes = []
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    for seed in ("0", "1"):
        out = str(tmp_path / f"seed{seed}.rrlog")
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.path.abspath(src_dir))
        env.pop("REPRO_CODEGEN", None)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--tool=none",
             f"--record={out}", "--thread-timeslice=300",
             "--checkpoint-every=700", str(prog)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode not in (2, 97), proc.stderr
        codes.append(proc.returncode)
        with open(out, "rb") as f:
            logs.append(f.read())
    assert codes[0] == codes[1]
    assert logs[0] == logs[1]
