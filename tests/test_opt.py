"""Unit tests for the optimisation phases (flatten, opt1, opt2, treebuild)."""

import pytest

from repro.frontend.spec import vx32_spec_helper
from repro.guest import regs as R
from repro.ir import (
    IRSB,
    Binop,
    ByteState,
    CCall,
    Const,
    Dirty,
    Exit,
    Get,
    IMark,
    IRInterpreter,
    JumpKind,
    Load,
    Put,
    RdTmp,
    StateFx,
    Store,
    Ty,
    Unop,
    WrTmp,
    c1,
    c8,
    c32,
    check_flat,
    validate,
)
from repro.opt.flatten import flatten
from repro.opt.opt1 import (
    cse,
    dead_code,
    forward_pass,
    optimise1,
    redundant_put_elim,
    unroll_self_loop,
)
from repro.opt.opt2 import optimise2
from repro.opt.treebuild import build_trees


def _figure1_block() -> IRSB:
    """The tree IR of the paper's Figure 1 (transliterated)."""
    sb = IRSB(guest_addr=0x24F275)
    sb.add(IMark(0x24F275, 7))
    t0 = sb.new_tmp(Ty.I32)
    sb.add(
        WrTmp(
            t0,
            Binop(
                "Add32",
                Binop(
                    "Add32", Get(12, Ty.I32), Binop("Shl32", Get(0, Ty.I32), c8(2))
                ),
                c32(0xFFFFC0CC),
            ),
        )
    )
    sb.add(Put(0, Load(Ty.I32, RdTmp(t0))))
    sb.next = c32(0x24F27C)
    return sb


class TestFlatten:
    def test_flatten_makes_flat_and_preserves_semantics(self):
        sb = _figure1_block()
        flat = flatten(sb)
        validate(flat, flat=True)
        st1, st2 = ByteState(), ByteState()
        for st in (st1, st2):
            st.put(12, Ty.I32, 100)
            st.put(0, Ty.I32, 4)
            st.store((100 + 16 + 0xFFFFC0CC) & 0xFFFFFFFF, Ty.I32, 77)
        interp = IRInterpreter()
        assert interp.run_block(sb, st1) == interp.run_block(flat, st2)
        assert st1.state == st2.state

    def test_flatten_splits_figure1_tree_into_five_assignments(self):
        # The paper: "the complex expression tree in statement 2 is
        # flattened into five assignments to temporaries".
        flat = flatten(_figure1_block())
        wrtmps = [s for s in flat.stmts if isinstance(s, WrTmp)]
        assert len(wrtmps) == 5 + 1  # five + the load's address use


class TestForwardPass:
    def test_constant_folding(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Binop("Add32", c32(2), c32(3))))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        out = dead_code(forward_pass(sb))
        puts = [s for s in out.stmts if isinstance(s, Put)]
        assert puts[0].data == c32(5)

    def test_get_forwarding_after_put(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(Put(8, c32(42)))
        sb.add(WrTmp(t, Get(8, Ty.I32)))
        sb.add(Put(12, RdTmp(t)))
        sb.next = c32(4)
        out = dead_code(forward_pass(sb))
        assert [s for s in out.stmts if isinstance(s, Put)][1].data == c32(42)

    def test_get_not_forwarded_past_dirty_write(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(Put(8, c32(42)))
        sb.add(Dirty("clobber", (), state_fx=(StateFx(True, 8, 4),)))
        sb.add(WrTmp(t, Get(8, Ty.I32)))
        sb.add(Put(12, RdTmp(t)))
        sb.next = c32(4)
        out = forward_pass(sb)
        put12 = [s for s in out.stmts if isinstance(s, Put) and s.offset == 12][0]
        assert put12.data != c32(42)

    def test_identities(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        u = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.add(WrTmp(u, Binop("Add32", RdTmp(t), c32(0))))
        sb.add(Put(4, RdTmp(u)))
        sb.next = c32(4)
        out = forward_pass(sb)
        put = [s for s in out.stmts if isinstance(s, Put)][0]
        assert put.data == RdTmp(t)  # x + 0 folded to x

    def test_exit_guard_const_false_removed(self):
        sb = IRSB(guest_addr=0)
        sb.add(Exit(c1(0), 0x100, JumpKind.Boring))
        sb.next = c32(4)
        out = forward_pass(sb)
        assert not any(isinstance(s, Exit) for s in out.stmts)

    def test_exit_guard_const_true_truncates_block(self):
        sb = IRSB(guest_addr=0)
        sb.add(Exit(c1(1), 0x100, JumpKind.Boring))
        sb.add(Put(0, c32(1)))  # unreachable
        sb.next = c32(4)
        out = forward_pass(sb)
        assert out.next == c32(0x100)
        assert not any(isinstance(s, Put) for s in out.stmts)

    def test_division_never_folded_to_trap(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Binop("DivU32", c32(1), c32(0))))
        sb.next = c32(4)
        out = forward_pass(sb)  # must not raise at optimisation time
        assert any(isinstance(s, WrTmp) for s in out.stmts)

    def test_spec_helper_inlines_condition(self):
        # cmp r0, r1; setl  ==>  a CmpLT32S, not a helper call.
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(Put(R.OFFSET_CC_OP, c32(R.CC_OP_SUB)))
        sb.add(Put(R.OFFSET_CC_DEP1, c32(1)))
        sb.add(Put(R.OFFSET_CC_DEP2, c32(2)))
        sb.add(Put(R.OFFSET_CC_NDEP, c32(0)))
        from repro.frontend.helpers import CALC_COND, THUNK_READS

        sb.add(
            WrTmp(
                t,
                CCall(
                    Ty.I32,
                    CALC_COND,
                    (
                        c32(R.COND_L),
                        Get(R.OFFSET_CC_OP, Ty.I32),
                        Get(R.OFFSET_CC_DEP1, Ty.I32),
                        Get(R.OFFSET_CC_DEP2, Ty.I32),
                        Get(R.OFFSET_CC_NDEP, Ty.I32),
                    ),
                    regparms_read=THUNK_READS,
                ),
            )
        )
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        out = forward_pass(flatten(sb), vx32_spec_helper)
        assert not any(
            isinstance(s, WrTmp) and isinstance(s.data, CCall) for s in out.stmts
        )
        # 1 < 2 signed: the result even constant-folds to 1.
        put0 = [s for s in out.stmts if isinstance(s, Put) and s.offset == 0][0]
        assert put0.data == c32(1)


class TestPutElimination:
    def test_redundant_put_removed(self):
        sb = IRSB(guest_addr=0)
        sb.add(Put(60, c32(1)))
        sb.add(Put(60, c32(2)))
        sb.next = c32(4)
        out = redundant_put_elim(sb)
        puts = [s for s in out.stmts if isinstance(s, Put)]
        assert len(puts) == 1 and puts[0].data == c32(2)

    def test_put_kept_across_memory_op(self):
        # The Figure-1 rule: a PUT of the PC cannot be removed when a
        # potentially-faulting memory operation intervenes.
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(Put(60, c32(1)))
        sb.add(WrTmp(t, Load(Ty.I32, c32(0x100))))
        sb.add(Put(60, c32(2)))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        out = redundant_put_elim(sb)
        assert len([s for s in out.stmts if isinstance(s, Put) and s.offset == 60]) == 2

    def test_put_kept_when_read_between(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(Put(8, c32(1)))
        sb.add(WrTmp(t, Get(8, Ty.I32)))
        sb.add(Put(8, c32(2)))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        out = redundant_put_elim(sb)
        assert len([s for s in out.stmts if isinstance(s, Put) and s.offset == 8]) == 2

    def test_overlapping_put_sizes(self):
        sb = IRSB(guest_addr=0)
        sb.add(Put(8, c32(0x11223344)))
        sb.add(Put(8, Const(Ty.I8, 0x55)))  # only covers one byte
        sb.next = c32(4)
        out = redundant_put_elim(sb)
        assert len([s for s in out.stmts if isinstance(s, Put)]) == 2


class TestCSEAndDCE:
    def test_cse_merges_identical_binops(self):
        sb = IRSB(guest_addr=0)
        a = sb.new_tmp(Ty.I32)
        t1 = sb.new_tmp(Ty.I32)
        t2 = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(a, Get(0, Ty.I32)))
        sb.add(WrTmp(t1, Binop("Add32", RdTmp(a), c32(1))))
        sb.add(WrTmp(t2, Binop("Add32", RdTmp(a), c32(1))))
        sb.add(Put(4, RdTmp(t1)))
        sb.add(Put(8, RdTmp(t2)))
        sb.next = c32(4)
        out = cse(sb)
        t2_def = [s for s in out.stmts if isinstance(s, WrTmp) and s.tmp == t2][0]
        assert t2_def.data == RdTmp(t1)

    def test_dce_removes_unused(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        u = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.add(WrTmp(u, Get(4, Ty.I32)))  # dead
        sb.add(Put(8, RdTmp(t)))
        sb.next = c32(4)
        out = dead_code(sb)
        assert not any(isinstance(s, WrTmp) and s.tmp == u for s in out.stmts)

    def test_dce_keeps_dirty_calls(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(Dirty("sideeffect", (), tmp=t, retty=Ty.I32))  # result unused
        sb.next = c32(4)
        out = dead_code(sb)
        assert any(isinstance(s, Dirty) for s in out.stmts)


class TestUnrolling:
    def test_self_loop_unrolls(self):
        sb = IRSB(guest_addr=0x100)
        t = sb.new_tmp(Ty.I32)
        sb.add(IMark(0x100, 3))
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(0x100)
        out = unroll_self_loop(sb)
        assert sum(1 for s in out.stmts if isinstance(s, IMark)) == 2
        validate(out)

    def test_non_self_loop_untouched(self):
        sb = IRSB(guest_addr=0x100)
        sb.add(IMark(0x100, 3))
        sb.next = c32(0x200)
        assert unroll_self_loop(sb) is sb


class TestTreebuild:
    def test_single_use_substituted(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        u = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.add(WrTmp(u, Binop("Add32", RdTmp(t), c32(1))))
        sb.add(Put(4, RdTmp(u)))
        sb.next = c32(4)
        out = build_trees(sb)
        put = [s for s in out.stmts if isinstance(s, Put)][0]
        assert isinstance(put.data, Binop)  # tree grew back

    def test_multi_use_not_duplicated(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Binop("Add32", c32(1), c32(2))))
        sb.add(Put(4, RdTmp(t)))
        sb.add(Put(8, RdTmp(t)))
        sb.next = c32(4)
        out = build_trees(sb)
        assert any(isinstance(s, WrTmp) and s.tmp == t for s in out.stmts)

    def test_load_not_moved_past_store(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Load(Ty.I32, c32(0x100))))
        sb.add(Store(c32(0x100), c32(9)))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        out = build_trees(sb)
        # The load must be materialised before the store.
        kinds = [type(s).__name__ for s in out.stmts]
        assert kinds.index("WrTmp") < kinds.index("Store")

    def test_get_not_moved_past_put(self):
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(8, Ty.I32)))
        sb.add(Put(8, c32(9)))
        sb.add(Put(0, RdTmp(t)))
        sb.next = c32(4)
        out = build_trees(sb)
        st1, st2 = ByteState(), ByteState()
        st1.put(8, Ty.I32, 1)
        st2.put(8, Ty.I32, 1)
        interp = IRInterpreter()
        interp.run_block(sb, st1)
        interp.run_block(out, st2)
        assert st1.state == st2.state


class TestFullPipelinePhases:
    def test_optimise1_output_is_flat_and_valid(self):
        out = optimise1(_figure1_block(), spec_helper=vx32_spec_helper)
        validate(out, flat=True)

    def test_optimise2_shrinks_naive_instrumentation(self):
        # Simulate a simple-minded tool that added foldable shadow code:
        # opt2 must clean it up (the paper's 48 -> 18 effect).
        sb = flatten(_figure1_block())
        n_before = sb.num_real_stmts()
        extra = sb.copy()
        junk_tmps = []
        for _ in range(10):
            t = extra.new_tmp(Ty.I32)
            extra.stmts.insert(1, WrTmp(t, Binop("Or32", c32(0), c32(0))))
            junk_tmps.append(t)
        out = optimise2(extra)
        assert out.num_real_stmts() <= n_before
