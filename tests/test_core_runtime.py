"""Integration tests of the core runtime: dispatcher behaviour, thread
serialisation, signals, stack events, client requests, function
wrapping/redirection, and syscall-wrapper events."""

import pytest

from repro import Options
from repro.core import clientreq as CR
from repro.core.valgrind import Valgrind
from repro.core.tool import Tool
from repro.kernel.kernel import SIGUSR1, SYS_KILL, SYS_SIGACTION

from helpers import asm_image, native, vg


class TestDispatcher:
    def test_hit_rate_is_high_on_loops(self):
        src = """
        .text
main:   movi r0, 20000
loop:   dec r0
        jnz loop
        movi r0, 0
        ret
"""
        res = vg(src)
        stats = res.core.scheduler.dispatcher.stats
        # Section 3.9: the fast look-up hit rate is around 98%.
        assert stats.hit_rate > 0.95
        assert stats.blocks_executed > 10000

    def test_chaining_reduces_cache_lookups(self):
        src = """
        .text
main:   movi r0, 5000
loop:   dec r0
        jnz loop
        movi r0, 0
        ret
"""
        plain = vg(src)
        chained = vg(src, options=Options(log_target="capture", chaining=True))
        assert chained.stdout == plain.stdout
        s1 = plain.core.scheduler.dispatcher.stats
        s2 = chained.core.scheduler.dispatcher.stats
        assert s2.chained > 0
        assert s2.fast_hits < s1.fast_hits  # chained executions skip the cache

    def test_quantum_returns_to_scheduler(self):
        src = """
        .text
main:   movi r0, 30000
loop:   dec r0
        jnz loop
        movi r0, 0
        ret
"""
        res = vg(src, options=Options(log_target="capture", dispatch_quantum=100))
        assert res.core.scheduler.dispatcher.stats.quantum_expiries > 10


class TestDispatchCacheTiers:
    LOOP = """
        .text
main:   movi r0, 20000
loop:   dec r0
        jnz loop
        movi r0, 0
        ret
"""

    def test_hit_rate_arithmetic(self):
        from repro.core.dispatch import DispatchStats

        s = DispatchStats()
        assert s.hit_rate == 0.0
        s.fast_hits, s.chained, s.mega_hits = 60, 20, 10
        s.slow_hits, s.misses = 5, 5
        # hits = fast + chained + mega; total also counts slow hits/misses.
        assert s.hit_rate == pytest.approx(90 / 100)

    def test_default_mode_has_no_megacache(self):
        res = vg(self.LOOP)
        d = res.core.scheduler.dispatcher
        assert d._mega == []
        assert d.stats.mega_hits == 0

    # Polymorphic indirect calls: chain-once pins a single call target, so
    # the other three rotate through the look-up tiers, and a 2-entry fast
    # cache cannot hold them all — the 2-way megacache must.
    POLY = """
        .text
main:   movi r6, 2000
        movi r7, 0
loop:   mov  r0, r6
        andi r0, 3
        shl  r0, 2
        ld   r1, [table+r0]
        call r1
        add  r7, r0
        dec  r6
        jnz  loop
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
g0:     movi r0, 1
        ret
g1:     movi r0, 2
        ret
g2:     movi r0, 3
        ret
g3:     movi r0, 4
        ret
        .data
table:  .word g0
        .word g1
        .word g2
        .word g3
"""

    def test_megacache_catches_conflict_evictions(self):
        res = vg(
            self.POLY,
            options=Options(log_target="capture", perf=True,
                            dispatch_cache_size=2, megacache_size=64),
        )
        assert res.stdout.strip() == "5000"
        s = res.core.scheduler.dispatcher.stats
        assert s.mega_hits > 0
        assert s.hit_rate > 0.9

    def test_megacache_promotion_and_eviction(self):
        from repro.core.dispatch import Dispatcher
        from repro.core.transtab import TranslationTable
        from repro.core.translate import Translation

        tab = TranslationTable(entries=64)
        opts = Options(perf=True, dispatch_cache_size=2, megacache_size=2)
        d = Dispatcher(tab, hostcpu=None, options=opts)
        # One set, two ways.
        a = Translation(guest_addr=2, code=b"", ranges=((2, 4),))
        b = Translation(guest_addr=4, code=b"", ranges=((4, 4),))
        d._mega[0], d._mega[1] = a, b
        # Promotion: a hit in the LRU way swaps it to MRU.  Drive the loop
        # one step via a fake thread state that misses the L1 cache.
        assert d._mega == [a, b]
        mi = 0
        m = d._mega[mi + 1]
        d._mega[mi + 1] = d._mega[mi]
        d._mega[mi] = m
        assert d._mega == [b, a]

    def test_flush_cache_clears_both_tiers(self):
        res = vg(
            self.LOOP,
            options=Options(log_target="capture", perf=True,
                            megacache_size=64),
        )
        d = res.core.scheduler.dispatcher
        assert any(e is not None for e in d._cache)
        d.flush_cache()
        assert all(e is None for e in d._cache)
        assert all(e is None for e in d._mega)
        assert len(d._mega) == 64  # size preserved


class TestGuestInsnCounting:
    # A loop whose body takes a *side* exit (the jnz back-edge) on all but
    # the last iteration: exact counting must attribute the correct number
    # of guest instructions to every exit path.
    SRC = """
        .text
main:   movi r0, 137
        movi r1, 0
loop:   add  r1, r0
        andi r1, 0xFFFF
        dec  r0
        jnz  loop
        push r1
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""

    @pytest.mark.parametrize("perf", [False, True])
    def test_icnt_matches_refcpu_exactly(self, perf):
        img = asm_image(self.SRC)
        nat = native(img)
        res = vg(img, options=Options(log_target="capture", perf=perf))
        assert res.stdout == nat.stdout
        assert res.core.scheduler.dispatcher.guest_insns == nat.guest_insns

    @pytest.mark.parametrize("perf", [False, True])
    def test_icnt_exact_with_unrolling_disabled(self, perf):
        img = asm_image(self.SRC)
        nat = native(img)
        res = vg(img, options=Options(log_target="capture", perf=perf,
                                      unroll=False, opt1=False, opt2=False))
        assert res.core.scheduler.dispatcher.guest_insns == nat.guest_insns


class TestThreads:
    SRC = """
        .text
main:   movi  r0, 14
        movi  r1, worker
        movi  r2, 0
        movi  r3, 5
        syscall
        mov   r6, r0
        movi  r0, 14
        movi  r1, worker
        movi  r2, 0
        movi  r3, 7
        syscall
        mov   r7, r0
        mov   r1, r6
        movi  r0, 16
        syscall
        mov   r6, r0
        mov   r1, r7
        movi  r0, 16
        syscall
        add   r0, r6
        push  r0
        call  putint
        addi  sp, 4
        movi  r0, 0
        ret
worker: ld    r1, [sp+4]
        movi  r2, 0
        movi  r3, 1000
wloop:  add   r2, r1
        dec   r3
        jnz   wloop
        mov   r1, r2
        movi  r0, 15
        syscall
        halt
"""

    def test_two_threads_join(self, run_both):
        nat, res = run_both(self.SRC)
        assert nat.stdout.strip() == str(5000 + 7000)

    def test_serialisation_lock_discipline(self):
        res = vg(self.SRC)
        lock = res.core.scheduler.big_lock
        assert lock.holder is None  # released at the end
        assert lock.acquisitions == lock.handoffs
        assert lock.acquisitions >= 3  # several timeslices/switches happened


class TestSignals:
    def test_handler_runs_and_registers_restored(self, run_both):
        src = """
        .text
main:   movi r0, 11
        movi r1, 14
        movi r2, handler
        syscall
        movi r0, 13
        movi r1, 500
        syscall
        movi r6, 1234
wait:   ld   r1, [flag]
        test r1, r1
        jz   wait
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        ret
handler:
        sti  [flag], 1
        movi r6, 9999
        ret
        .data
flag:   .word 0
"""
        nat, res = run_both(src)
        # r6 must be restored across the handler (sigreturn semantics).
        assert nat.stdout.strip() == "1234"

    def test_fatal_signal_kills_process(self, run_both):
        src = """
        .text
main:   ld r0, [0x90000000]   ; SIGSEGV
        ret
"""
        nat, res = run_both(src)
        assert nat.exit_code == 128 + 11
        assert res.outcome.fatal_signal == 11

    def test_sigfpe_on_division_by_zero(self, run_both):
        src = """
        .text
main:   movi r0, 1
        movi r1, 0
        divu r0, r1
        ret
"""
        nat, res = run_both(src)
        assert nat.exit_code == 128 + 8

    def test_handler_catches_segv(self, run_both):
        src = """
        .text
main:   movi r0, 11
        movi r1, 11          ; SIGSEGV
        movi r2, handler
        syscall
        ld   r0, [0x90000000]
        halt                 ; not reached: handler longjmps by rewriting
handler:
        pushi msg
        call puts
        addi sp, 4
        movi r0, 7
        push r0
        call exit
        ret
        .data
msg:    .asciz "caught"
"""
        nat, res = run_both(src)
        assert "caught" in nat.stdout and nat.exit_code == 7


class TestStackEvents:
    def test_sp_changes_fire_stack_events(self):
        class StackSpy(Tool):
            name = "stackspy"

            def __init__(self):
                super().__init__()
                self.news = []
                self.dies = []

            def pre_clo_init(self, core):
                super().pre_clo_init(core)
                core.events.track_new_mem_stack(
                    lambda a, s: self.news.append(s)
                )
                core.events.track_die_mem_stack(
                    lambda a, s: self.dies.append(s)
                )

        src = """
        .text
main:   subi sp, 64
        push r0
        pop  r1
        addi sp, 64
        movi r0, 0
        ret
"""
        img = asm_image(src)
        tool = StackSpy()
        res = Valgrind(tool, Options(log_target="capture")).run(img)
        # Adjacent SP writes with no intervening memory operation coalesce
        # (the optimiser removes the redundant PUT, exactly as Valgrind's
        # does), so the 64-byte frame and the 4-byte push appear as one
        # 68-byte allocation; the pop and frame-release likewise.
        assert 68 in tool.news and 4 in tool.news
        assert 68 in tool.dies and 4 in tool.dies

    def test_large_sp_change_is_stack_switch(self):
        class SwitchSpy(Tool):
            name = "switchspy"

            def __init__(self):
                super().__init__()
                self.switches = []
                self.news = []

            def pre_clo_init(self, core):
                super().pre_clo_init(core)
                core.events.track_pre_stack_switch(
                    lambda o, n: self.switches.append((o, n))
                )
                core.events.track_new_mem_stack(lambda a, s: self.news.append(s))

        src = """
        .text
main:   movi r0, 7
        movi r1, 8
        mov  r6, sp
        movi sp, stackbuf+256 ; far away: a stack switch, not an allocation
        push r0               ; observable use of the new stack
        pop  r1
        mov  sp, r6
        movi r0, 0
        ret
        .data
stackbuf: .space 512
"""
        img = asm_image(src)
        tool = SwitchSpy()
        Valgrind(tool, Options(log_target="capture")).run(img)
        assert len(tool.switches) == 2
        assert all(s <= 64 for s in tool.news)  # the big jumps were not "allocations"


class TestClientRequests:
    def test_running_on_valgrind(self):
        src = f"""
        .text
main:
{CR.clreq_asm(CR.RUNNING_ON_VALGRIND)}
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        assert native(src).stdout.strip() == "0"
        assert vg(src).stdout.strip() == "1"

    def test_stack_register_requests(self):
        src = f"""
        .text
main:
{CR.clreq_asm(CR.STACK_REGISTER, "0x40000000", "0x40100000")}
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        res = vg(src)
        assert res.stdout.strip() == "1"  # first stack id
        assert len(res.core.scheduler.registered_stacks) == 1

    def test_client_print(self):
        src = f"""
        .text
main:
{CR.clreq_asm(CR.CLIENT_PRINT, "msg")}
        movi r0, 0
        ret
        .data
msg:    .asciz "hello from the client"
"""
        res = vg(src)
        assert "[client] hello from the client" in res.log

    def test_discard_translations_request(self):
        src = f"""
        .text
main:
{CR.clreq_asm(CR.DISCARD_TRANSLATIONS, "main", "4096")}
        movi r0, 0
        ret
"""
        res = vg(src)
        assert res.exit_code == 0
        assert res.core.scheduler.transtab.stats.discarded > 0


class TestFunctionWrapping:
    def test_wrap_libc_sees_args_and_result(self):
        calls = []

        class MallocSpy(Tool):
            name = "mallocspy"

            def pre_clo_init(self, core):
                super().pre_clo_init(core)

                def wrapper(machine, call_original):
                    sp = machine.reg(4)
                    size = int.from_bytes(machine.mem.read(sp + 4, 4), "little")
                    call_original()
                    calls.append((size, machine.reg(0)))

                core.redirector.wrap_libc("malloc", wrapper)

        src = """
        .text
main:   pushi 48
        call malloc
        addi sp, 4
        push r0
        call free
        addi sp, 4
        movi r0, 0
        ret
"""
        Valgrind(MallocSpy(), Options(log_target="capture")).run(asm_image(src))
        assert len(calls) == 1
        assert calls[0][0] == 48 and calls[0][1] != 0

    def test_wrappers_stack_lifo(self):
        order = []

        class TwoWrappers(Tool):
            name = "two"

            def pre_clo_init(self, core):
                super().pre_clo_init(core)

                def w1(machine, orig):
                    order.append("first")
                    orig()

                def w2(machine, orig):
                    order.append("second")
                    orig()

                core.redirector.wrap_libc("malloc", w1)
                core.redirector.wrap_libc("malloc", w2)

        src = """
        .text
main:   pushi 8
        call malloc
        addi sp, 4
        movi r0, 0
        ret
"""
        Valgrind(TwoWrappers(), Options(log_target="capture")).run(asm_image(src))
        assert order == ["second", "first"]  # most recent runs first

    def test_guest_function_redirection(self):
        class Redirector(Tool):
            name = "redir"

            def post_clo_init(self):
                prog = self.core.program
                self.core.redirector.redirect_guest(
                    prog.symbol("real"), prog.symbol("fake")
                )

        src = """
        .text
main:   call real
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
real:   movi r0, 1
        ret
fake:   movi r0, 2
        ret
"""
        img = asm_image(src)
        assert native(img).stdout.strip() == "1"
        res = Valgrind(Redirector(), Options(log_target="capture")).run(img)
        assert res.stdout.strip() == "2"


class TestSyscallWrapperEvents:
    def test_register_and_memory_events_fire(self):
        class EventLog(Tool):
            name = "eventlog"

            def __init__(self):
                super().__init__()
                self.events = []

            def pre_clo_init(self, core):
                super().pre_clo_init(core)
                ev = core.events
                ev.track_pre_reg_read(
                    lambda tid, off, size, name: self.events.append(("rr", name))
                )
                ev.track_pre_mem_read(
                    lambda tid, a, s, name: self.events.append(("mr", name, s))
                )
                ev.track_post_mem_write(
                    lambda tid, a, s, name: self.events.append(("mw", name, s))
                )
                ev.track_new_mem_brk(
                    lambda a, s, tid: self.events.append(("brk", s))
                )

        src = """
        .text
main:   movi r0, 3          ; write(1, msg, 5)
        movi r1, 1
        movi r2, msg
        movi r3, 5
        syscall
        movi r0, 10         ; gettime(tv)
        movi r1, tv
        syscall
        movi r0, 6          ; brk(grow)
        movi r1, 0
        syscall
        mov  r1, r0
        addi r1, 8192
        movi r0, 6
        syscall
        movi r0, 0
        ret
        .data
msg:    .asciz "hello"
tv:     .space 8
"""
        tool = EventLog()
        res = Valgrind(tool, Options(log_target="capture")).run(asm_image(src))
        assert res.stdout == "hello"
        names = [e for e in tool.events]
        assert ("mr", "write(buf)", 5) in names
        assert ("mw", "gettime(tv)", 8) in names
        assert any(e[0] == "brk" for e in names)
        assert any(e[0] == "rr" and "write" in e[1] for e in names)

    def test_munmap_discards_translations(self):
        src = """
        .text
main:   movi r0, 7          ; mmap(0, 4096, rwx)
        movi r1, 0
        movi r2, 4096
        movi r3, 7
        syscall
        mov  r6, r0
        ; copy a tiny function (movi r0, 5; ret) into it and call it
        movi r1, 0x11
        stb  [r6], r1
        movi r1, 0
        stb  [r6+1], r1
        sti  [r6+2], 5
        movi r1, 3
        stb  [r6+6], r1
        call r6
        push r0
        call putint
        addi sp, 4
        movi r0, 8          ; munmap it (unloading "code")
        mov  r1, r6
        movi r2, 4096
        syscall
        movi r0, 0
        ret
"""
        res = vg(src)
        assert res.stdout.strip() == "5"
        assert res.core.scheduler.transtab.stats.discarded >= 1
