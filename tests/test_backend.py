"""Back-end tests: host ISA encode/decode, instruction selection,
register allocation, and the host CPU."""

import pytest

from repro.backend.hostcpu import HostCPU
from repro.backend.hostisa import (
    ALLOCATABLE,
    BIN,
    CALL,
    CSEL,
    HostEncodeError,
    ImmArg,
    LDG,
    LDM,
    LI,
    LIF,
    MOVR,
    RC,
    RELOAD,
    RET,
    Reg,
    SETPCI,
    SETPCR,
    SIDEEXIT,
    SPILL,
    STG,
    STM,
    Slot,
    UN,
    decode_insns,
    encode_insns,
)
from repro.backend.isel import select
from repro.backend.regalloc import allocate
from repro.core.threadstate import ThreadState
from repro.ir import (
    IRSB,
    Binop,
    Get,
    HelperRegistry,
    JumpKind,
    Load,
    Put,
    RdTmp,
    Store,
    Ty,
    Unop,
    WrTmp,
    c32,
)
from repro.ir.helpers import HelperRegistry
from repro.kernel.memory import GuestMemory, PROT_RW


def _roundtrip(insns):
    return decode_insns(encode_insns(insns))


class TestHostEncoding:
    def test_roundtrip_every_class(self):
        h0 = Reg(RC.INT, 0)
        h1 = Reg(RC.INT, 1)
        f0 = Reg(RC.FLT, 0)
        v0 = Reg(RC.VEC, 0)
        insns = [
            LI(h0, 0x1122334455667788AABBCCDD),
            LIF(f0, 3.25),
            MOVR(h1, h0),
            BIN("Add32", h0, h0, h1),
            UN("Not32", h1, h0),
            LDG(Ty.I32, h0, 60),
            STG(Ty.F64, 64, f0),
            LDM(Ty.I8, h1, h0),
            STM(Ty.V128, h0, v0),
            CSEL(h0, h1, h0, h1),
            CALL("helper", (h0, Slot(3, Ty.I64), ImmArg(7, Ty.I32)),
                 dst=h1, retty=Ty.I32, dirty=True, guard=h0),
            SIDEEXIT(h0, 0x1234, "Boring"),
            SETPCI(0x4321),
            SETPCR(h0),
            SPILL(300, h0, Ty.I64),
            RELOAD(h1, 300, Ty.I64),
            RET("Sys_syscall"),
        ]
        assert _roundtrip(insns) == insns

    def test_virtual_register_rejected(self):
        with pytest.raises(HostEncodeError, match="virtual"):
            encode_insns([MOVR(Reg(RC.INT, 0, virtual=True), Reg(RC.INT, 1))])


def _compile_ir(sb):
    from repro.opt.treebuild import build_trees

    vcode = select(build_trees(sb))
    hcode, stats = allocate(vcode)
    return encode_insns(hcode), stats


def _run_code(code, helpers=None, state_init=None, mem=None):
    mem = mem or GuestMemory()
    ts = ThreadState()
    if state_init:
        for off, ty, v in state_init:
            ts.put(off, ty, v)
    cpu = HostCPU(mem, helpers or HelperRegistry(), env=object())
    jk, _icnt = cpu.run(cpu.compile(code), ts)
    return ts, jk, cpu


class TestEndToEnd:
    def _sb(self):
        sb = IRSB(guest_addr=0x100)
        sb.next = c32(0x104)
        return sb

    def test_simple_alu(self):
        sb = self._sb()
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Binop("Mul32", Get(0, Ty.I32), c32(7))))
        sb.add(Put(4, RdTmp(t)))
        code, _ = _compile_ir(sb)
        ts, jk, _ = _run_code(code, state_init=[(0, Ty.I32, 6)])
        assert ts.get(4, Ty.I32) == 42
        assert ts.pc == 0x104 and jk == "Boring"

    def test_memory_roundtrip(self):
        sb = self._sb()
        t = sb.new_tmp(Ty.I32)
        sb.add(Store(c32(0x2000), c32(0xBEEF)))
        sb.add(WrTmp(t, Load(Ty.I32, c32(0x2000))))
        sb.add(Put(0, RdTmp(t)))
        code, _ = _compile_ir(sb)
        mem = GuestMemory()
        mem.map(0x2000, 0x1000, PROT_RW)
        ts, _, _ = _run_code(code, mem=mem)
        assert ts.get(0, Ty.I32) == 0xBEEF

    def test_float_and_vector_paths(self):
        sb = self._sb()
        t = sb.new_tmp(Ty.F64)
        v = sb.new_tmp(Ty.V128)
        sb.add(WrTmp(t, Binop("AddF64", Get(64, Ty.F64), Get(72, Ty.F64))))
        sb.add(Put(64, RdTmp(t)))
        sb.add(WrTmp(v, Unop("Dup8x16", Unop("32to8", Get(0, Ty.I32)))))
        sb.add(Put(128, RdTmp(v)))
        code, _ = _compile_ir(sb)
        ts, _, _ = _run_code(
            code,
            state_init=[(64, Ty.F64, 1.5), (72, Ty.F64, 2.0), (0, Ty.I32, 0xAB)],
        )
        assert ts.get(64, Ty.F64) == 3.5
        assert ts.get(128, Ty.V128) == int.from_bytes(b"\xab" * 16, "little")

    def test_clean_and_dirty_calls(self):
        helpers = HelperRegistry()
        helpers.register_pure("double_it", lambda x: (2 * x) & 0xFFFFFFFF)
        seen = []
        helpers.register_dirty("observe", lambda env, x: seen.append(x) or 0)
        from repro.ir import CCall, Dirty

        sb = self._sb()
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, CCall(Ty.I32, "double_it", (c32(21),))))
        sb.add(Put(0, RdTmp(t)))
        sb.add(Dirty("observe", (RdTmp(t),)))
        code, _ = _compile_ir(sb)
        ts, _, _ = _run_code(code, helpers=helpers)
        assert ts.get(0, Ty.I32) == 42 and seen == [42]

    def test_guarded_dirty_call_skipped(self):
        helpers = HelperRegistry()
        seen = []
        helpers.register_dirty("observe", lambda env: seen.append(1) or 0)
        from repro.ir import Dirty, c1

        sb = self._sb()
        t = sb.new_tmp(Ty.I1)
        sb.add(WrTmp(t, Binop("CmpEQ32", Get(0, Ty.I32), c32(99))))
        sb.add(Dirty("observe", (), guard=RdTmp(t)))
        code, _ = _compile_ir(sb)
        _run_code(code, helpers=helpers, state_init=[(0, Ty.I32, 1)])
        assert seen == []
        _run_code(code, helpers=helpers, state_init=[(0, Ty.I32, 99)])
        assert seen == [1]

    def test_side_exit(self):
        from repro.ir import Exit

        sb = self._sb()
        t = sb.new_tmp(Ty.I1)
        sb.add(WrTmp(t, Binop("CmpEQ32", Get(0, Ty.I32), c32(5))))
        sb.add(Exit(RdTmp(t), 0x999, JumpKind.Boring))
        sb.add(Put(4, c32(1)))
        code, _ = _compile_ir(sb)
        ts, jk, _ = _run_code(code, state_init=[(0, Ty.I32, 5)])
        assert ts.pc == 0x999 and ts.get(4, Ty.I32) == 0  # exit skipped the put
        ts, jk, _ = _run_code(code, state_init=[(0, Ty.I32, 6)])
        assert ts.pc == 0x104 and ts.get(4, Ty.I32) == 1

    def test_indirect_next(self):
        sb = self._sb()
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.next = RdTmp(t)
        sb.jumpkind = JumpKind.Ret
        code, _ = _compile_ir(sb)
        ts, jk, _ = _run_code(code, state_init=[(0, Ty.I32, 0xCAFE)])
        assert ts.pc == 0xCAFE and jk == "Ret"


class TestRegalloc:
    def test_spilling_under_pressure(self):
        """More live values than registers: correctness must survive."""
        sb = IRSB(guest_addr=0)
        n = ALLOCATABLE[RC.INT] + 6
        tmps = []
        for i in range(n):
            t = sb.new_tmp(Ty.I32)
            sb.add(WrTmp(t, Binop("Add32", Get(0, Ty.I32), c32(i))))
            tmps.append(t)
        # All values are still live here: sum them pairwise.
        acc = tmps[0]
        for t in tmps[1:]:
            u = sb.new_tmp(Ty.I32)
            sb.add(WrTmp(u, Binop("Add32", RdTmp(acc), RdTmp(t))))
            acc = u
        sb.add(Put(4, RdTmp(acc)))
        sb.next = c32(4)
        from repro.opt.flatten import flatten

        vcode = select(sb)
        hcode, stats = allocate(vcode)
        assert stats.spilled_vregs > 0
        code = encode_insns(hcode)
        ts, _, _ = _run_code(code, state_init=[(0, Ty.I32, 100)])
        want = sum(100 + i for i in range(n)) & 0xFFFFFFFF
        assert ts.get(4, Ty.I32) == want

    def test_values_live_across_calls_are_spilled(self):
        helpers = HelperRegistry()
        helpers.register_dirty("clobberer", lambda env: 0)
        from repro.ir import Dirty

        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Binop("Add32", Get(0, Ty.I32), c32(1))))
        sb.add(Dirty("clobberer", ()))
        sb.add(Put(4, RdTmp(t)))  # t is live across the call
        sb.next = c32(4)
        vcode = select(sb)
        hcode, stats = allocate(vcode)
        assert stats.spilled_vregs >= 1
        code = encode_insns(hcode)
        ts, _, _ = _run_code(code, helpers=helpers, state_init=[(0, Ty.I32, 9)])
        assert ts.get(4, Ty.I32) == 10

    def test_move_coalescing_removes_moves(self):
        # The Figure 3 effect: reg-to-reg moves vanish when the allocator
        # gives source and destination the same register.
        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        u = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, Get(0, Ty.I32)))
        sb.add(WrTmp(u, RdTmp(t)))  # a move
        sb.add(Put(4, RdTmp(u)))
        sb.next = c32(4)
        vcode = select(sb)
        n_moves = sum(1 for i in vcode if isinstance(i, MOVR))
        assert n_moves >= 1
        hcode, stats = allocate(vcode)
        assert stats.moves_removed >= 1
        assert stats.moves_before >= stats.moves_removed

    def test_constant_rematerialisation(self):
        """Spilled constants are re-loaded as immediates, not from slots."""
        helpers = HelperRegistry()
        helpers.register_dirty("c", lambda env: 0)
        from repro.ir import Dirty

        sb = IRSB(guest_addr=0)
        t = sb.new_tmp(Ty.I32)
        sb.add(WrTmp(t, c32(0x1234)))
        sb.add(Dirty("c", ()))  # forces t (live across) to spill
        sb.add(Put(4, RdTmp(t)))
        sb.next = c32(4)
        hcode, stats = allocate(select(sb))
        assert stats.spilled_vregs >= 1
        assert not any(isinstance(i, RELOAD) for i in hcode)
        code = encode_insns(hcode)
        ts, _, _ = _run_code(code, helpers=helpers)
        assert ts.get(4, Ty.I32) == 0x1234
