"""Shared helper functions for the test suite."""

from __future__ import annotations

from repro import Options, assemble, build_source, run_native, run_tool
from repro.guest.program import VxImage


def asm_image(source: str, *, with_libc: bool = True, name: str = "test") -> VxImage:
    """Assemble a test program (with the libc prelude by default)."""
    return assemble(build_source(source, with_libc=with_libc), filename=name)


def native(source_or_image, *, argv=None, stdin: bytes = b"", max_insns=20_000_000):
    img = (
        source_or_image
        if isinstance(source_or_image, VxImage)
        else asm_image(source_or_image)
    )
    return run_native(img, argv, stdin=stdin, max_insns=max_insns)


def vg(source_or_image, tool: str = "none", *, argv=None, stdin: bytes = b"",
       options: Options = None, **opt_kw):
    img = (
        source_or_image
        if isinstance(source_or_image, VxImage)
        else asm_image(source_or_image)
    )
    if options is None:
        options = Options(log_target="capture", **opt_kw)
    return run_tool(tool, img, argv, options=options, stdin=stdin)


