"""Shared helper functions for the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Options, assemble, build_source, run_native, run_tool
from repro.guest.program import VxImage


def asm_image(source: str, *, with_libc: bool = True, name: str = "test") -> VxImage:
    """Assemble a test program (with the libc prelude by default)."""
    return assemble(build_source(source, with_libc=with_libc), filename=name)


def native(source_or_image, *, argv=None, stdin: bytes = b"", max_insns=20_000_000):
    img = (
        source_or_image
        if isinstance(source_or_image, VxImage)
        else asm_image(source_or_image)
    )
    return run_native(img, argv, stdin=stdin, max_insns=max_insns)


def vg(source_or_image, tool: str = "none", *, argv=None, stdin: bytes = b"",
       options: Options = None, **opt_kw):
    img = (
        source_or_image
        if isinstance(source_or_image, VxImage)
        else asm_image(source_or_image)
    )
    if options is None:
        options = Options(log_target="capture", **opt_kw)
    return run_tool(tool, img, argv, options=options, stdin=stdin)


# ---------------------------------------------------------------------------
# Random-program generation for differential testing (hypothesis), shared
# by tests/test_differential.py and tests/test_perf_mode.py.
# ---------------------------------------------------------------------------

BUF_WORDS = 64

_GPR = st.sampled_from(["r0", "r1", "r2", "r3", "r6", "r7"])
_FREG = st.sampled_from(["f0", "f1", "f2", "f3"])
_VREG = st.sampled_from(["v0", "v1"])
_IMM = st.integers(-1000, 1000)
_SHIFT = st.integers(0, 40)
_COND = st.sampled_from(["z", "nz", "b", "nb", "be", "nbe", "s", "ns",
                         "l", "nl", "le", "nle"])


@st.composite
def _insn(draw) -> str:
    kind = draw(st.integers(0, 15))
    r = draw(_GPR)
    r2 = draw(_GPR)
    if kind == 0:
        return f"movi {r}, {draw(_IMM)}"
    if kind == 1:
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "mul",
                                   "cmp", "test"]))
        return f"{op} {r}, {r2}"
    if kind == 2:
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "mul",
                                   "cmp", "test"]))
        return f"{op} {r}, {draw(_IMM)}"
    if kind == 3:
        op = draw(st.sampled_from(["shl", "shr", "sar"]))
        if draw(st.booleans()):
            return f"{op} {r}, {draw(_SHIFT)}"
        return f"andi {r2}, 63\n{op} {r}, {r2}"
    if kind == 4:
        op = draw(st.sampled_from(["inc", "dec", "neg", "not", "sxb", "sxw"]))
        return f"{op} {r}"
    if kind == 5:  # bounded store + load
        return (
            f"andi {r}, {(BUF_WORDS - 1) * 4}\n"
            f"st [buf+{r}], {r2}\n"
            f"ld {r2}, [buf+{r}]"
        )
    if kind == 6:  # narrow memory ops
        op = draw(st.sampled_from(["ldb", "ldbs", "ldw", "ldws"]))
        return f"andi {r}, {(BUF_WORDS - 2) * 4}\n{op} {r2}, [buf+{r}+1]"
    if kind == 7:
        return f"set{draw(_COND)} {r}"
    if kind == 8:  # guarded division
        op = draw(st.sampled_from(["divu", "divs", "modu", "mods"]))
        return f"ori {r2}, 1\n{op} {r}, {r2}"
    if kind == 9:
        op = draw(st.sampled_from(["rol", "ror"]))
        return f"{op} {r}, {draw(st.integers(0, 40))}"
    if kind == 10:  # FP
        f1, f2 = draw(_FREG), draw(_FREG)
        op = draw(st.sampled_from(["fadd", "fsub", "fmul", "fmov", "fmin",
                                   "fmax", "fabs", "fneg"]))
        return f"{op} {f1}, {f2}"
    if kind == 11:  # FP <-> int and memory
        f1 = draw(_FREG)
        return (
            f"andi {r}, {(BUF_WORDS - 2) * 4}\n"
            f"ficvt {f1}, {r2}\n"
            f"fst [buf+{r}], {f1}\n"
            f"fld {f1}, [buf+{r}]\n"
            f"fcvti {r2}, {f1}"
        )
    if kind == 12:  # fcmp + conditional
        f1, f2 = draw(_FREG), draw(_FREG)
        return f"fcmp {f1}, {f2}\nset{draw(_COND)} {r}"
    if kind == 13:  # SIMD
        v1, v2 = draw(_VREG), draw(_VREG)
        op = draw(st.sampled_from(["vaddb", "vaddw", "vsubd", "vxor", "vand",
                                   "vor", "vcmpeqb", "vmaxub", "vavgub",
                                   "vmulw", "vmov"]))
        return f"{op} {v1}, {v2}"
    if kind == 14:  # SIMD splat/memory
        v1 = draw(_VREG)
        return (
            f"andi {r}, {(BUF_WORDS - 8) * 4}\n"
            f"vsplatb {v1}, {r2}\n"
            f"vst [buf+{r}], {v1}\n"
            f"vld {v1}, [buf+{r}]"
        )
    # misc: mov / xchg / lea / push-pop pair / machid
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return f"mov {r}, {r2}"
    if choice == 1:
        return f"xchg {r}, {r2}"
    if choice == 2:
        return f"andi {r2}, 255\nlea {r}, [buf+{r2}*2+8]"
    if choice == 3:
        return f"push {r}\npush {r2}\npop {r}\npop {r2}"
    return "machid"


@st.composite
def programs(draw) -> str:
    """A random program: setup, a counted loop over a random body, a tail."""
    setup = [f"movi r{i}, {draw(_IMM)}" for i in range(4)]
    body = draw(st.lists(_insn(), min_size=1, max_size=12))
    tail = draw(st.lists(_insn(), min_size=0, max_size=6))
    n_iter = draw(st.integers(1, 9))
    lines = (
        ["_start:"]
        + setup
        + [f"movi fp, {n_iter}", "loop:"]
        + body
        + ["dec fp", "jnz loop"]
        + tail
        + ["halt", ".data", f"buf: .space {BUF_WORDS * 8 + 64}"]
    )
    return "\n".join(lines)


def ref_run(img):
    """Run *img* to HALT on the reference CPU via the real loader.

    Returns ``(ThreadState, data-segment bytes, data segment)`` for
    architected-state comparison against a DBI run.
    """
    from repro.core.threadstate import ThreadState
    from repro.guest.loader import load_program
    from repro.guest.refcpu import RefCPU, TrapKind
    from repro.kernel.kernel import Kernel
    from repro.kernel.memory import GuestMemory

    mem = GuestMemory()
    prog = load_program(img, Kernel(mem))
    cpu = RefCPU(mem)
    cpu.pc = prog.entry
    cpu.regs[4] = prog.initial_sp
    trap = cpu.run(500_000)
    assert trap is TrapKind.HALT
    ts = ThreadState()
    ts.load_from_cpu(cpu)
    data_seg = [s for s in img.segments if "w" in s.perms][0]
    return ts, mem.read_raw(data_seg.addr, len(data_seg.data)), data_seg


