"""Tests for guest memory, the filesystem, and the kernel's syscalls."""

import struct

import pytest

from repro.kernel.fs import (
    EBADF,
    ENOENT,
    FileSystem,
    FsError,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.kernel.kernel import (
    BLOCKED,
    Kernel,
    NO_RESULT,
    ProcessExit,
    SIGALRM,
    SYS_ALARM,
    SYS_BRK,
    SYS_CLOSE,
    SYS_EXIT,
    SYS_GETTIME,
    SYS_KILL,
    SYS_MMAP,
    SYS_MREMAP,
    SYS_MUNMAP,
    SYS_OPEN,
    SYS_READ,
    SYS_SETTIME,
    SYS_SIGACTION,
    SYS_WRITE,
)
from repro.kernel.memory import (
    GuestFault,
    GuestMemory,
    PAGE_SIZE,
    PROT_READ,
    PROT_RW,
    PROT_RX,
)
from repro.ir.types import Ty


class FakeEngine:
    def __init__(self):
        self.insns = 1000

    def guest_insns(self):
        return self.insns


class TestGuestMemory:
    def test_map_read_write(self):
        m = GuestMemory()
        m.map(0x1000, 0x2000, PROT_RW)
        m.write(0x1FFE, b"abcd")  # crosses a page boundary
        assert m.read(0x1FFE, 4) == b"abcd"

    def test_unmapped_faults(self):
        m = GuestMemory()
        with pytest.raises(GuestFault, match="unmapped"):
            m.read(0x1000, 1)

    def test_permissions(self):
        m = GuestMemory()
        m.map(0x1000, PAGE_SIZE, PROT_READ)
        assert m.read(0x1000, 1) == b"\0"
        with pytest.raises(GuestFault, match="permission"):
            m.write(0x1000, b"x")
        with pytest.raises(GuestFault, match="permission"):
            m.fetch(0x1000, 1)

    def test_protect(self):
        m = GuestMemory()
        m.map(0x1000, PAGE_SIZE, PROT_RW)
        m.protect(0x1000, PAGE_SIZE, PROT_RX)
        with pytest.raises(GuestFault):
            m.write(0x1000, b"x")
        m.fetch(0x1000, 1)

    def test_unmap(self):
        m = GuestMemory()
        m.map(0x1000, PAGE_SIZE, PROT_RW)
        m.unmap(0x1000, PAGE_SIZE)
        assert not m.is_mapped(0x1000)

    def test_remap_zeroes(self):
        m = GuestMemory()
        m.map(0x1000, PAGE_SIZE, PROT_RW)
        m.write(0x1000, b"xyz")
        m.map(0x1000, PAGE_SIZE, PROT_RW)
        assert m.read(0x1000, 3) == b"\0\0\0"

    def test_mapped_ranges_coalesce(self):
        m = GuestMemory()
        m.map(0x1000, 2 * PAGE_SIZE, PROT_RW)
        m.map(0x3000, PAGE_SIZE, PROT_RX)
        ranges = list(m.mapped_ranges())
        assert (0x1000, 2 * PAGE_SIZE, PROT_RW) in ranges
        assert (0x3000, PAGE_SIZE, PROT_RX) in ranges

    def test_typed_access(self):
        m = GuestMemory()
        m.map(0x1000, PAGE_SIZE, PROT_RW)
        m.store(0x1000, Ty.F64, 2.5)
        assert m.load(0x1000, Ty.F64) == 2.5

    def test_read_cstring(self):
        m = GuestMemory()
        m.map(0x1000, PAGE_SIZE, PROT_RW)
        m.write(0x1000, b"hello\0junk")
        assert m.read_cstring(0x1000) == b"hello"


class TestFileSystem:
    def test_std_streams(self):
        fs = FileSystem()
        fs.set_stdin(b"input")
        assert fs.read(0, 3) == b"inp"
        assert fs.read(0, 10) == b"ut"
        fs.write(1, b"out")
        fs.write(2, b"err")
        assert fs.stdout_text() == "out" and fs.stderr_text() == "err"

    def test_open_missing(self):
        fs = FileSystem()
        with pytest.raises(FsError) as ei:
            fs.open("nope", O_RDONLY)
        assert ei.value.errno == ENOENT

    def test_create_write_read(self):
        fs = FileSystem()
        fd = fs.open("f.txt", O_WRONLY | O_CREAT)
        fs.write(fd, b"hello")
        fs.lseek(fd, 0, SEEK_SET)
        assert fs.read(fd, 5) == b"hello"
        fs.close(fd)
        assert not fs.is_open(fd)

    def test_trunc_and_append(self):
        fs = FileSystem()
        fs.add_file("f", b"0123456789")
        fd = fs.open("f", O_WRONLY | O_APPEND)
        fs.write(fd, b"X")
        assert bytes(fs.files["f"]) == b"0123456789X"
        fd2 = fs.open("f", O_WRONLY | O_TRUNC)
        assert fs.size(fd2) == 0

    def test_seek_modes(self):
        fs = FileSystem()
        fs.add_file("f", b"abcdef")
        fd = fs.open("f", O_RDONLY)
        assert fs.lseek(fd, 2, SEEK_SET) == 2
        assert fs.lseek(fd, 2, SEEK_CUR) == 4
        assert fs.lseek(fd, -1, SEEK_END) == 5
        assert fs.read(fd, 1) == b"f"

    def test_bad_fd(self):
        fs = FileSystem()
        with pytest.raises(FsError) as ei:
            fs.read(99, 1)
        assert ei.value.errno == EBADF

    def test_unlink(self):
        fs = FileSystem()
        fs.add_file("f", b"x")
        fs.unlink("f")
        assert "f" not in fs.files


class TestKernelSyscalls:
    def _kernel(self):
        mem = GuestMemory()
        k = Kernel(mem)
        k.set_brk_base(0x20000)
        return k, mem, FakeEngine()

    def test_exit_raises(self):
        k, _, eng = self._kernel()
        with pytest.raises(ProcessExit) as ei:
            k.syscall(eng, 1, SYS_EXIT, 7, 0, 0)
        assert ei.value.status == 7

    def test_brk_grow_and_shrink(self):
        k, mem, eng = self._kernel()
        assert k.syscall(eng, 1, SYS_BRK, 0, 0, 0) == 0x20000
        new = k.syscall(eng, 1, SYS_BRK, 0x20000 + 100, 0, 0)
        assert new == 0x20000 + 100
        assert mem.is_mapped(0x20000)
        k.syscall(eng, 1, SYS_BRK, 0x20000, 0, 0)
        assert not mem.is_mapped(0x20000 + PAGE_SIZE)

    def test_mmap_munmap(self):
        k, mem, eng = self._kernel()
        addr = k.syscall(eng, 1, SYS_MMAP, 0, 8192, 0)
        assert addr >= k.mmap_base and mem.is_mapped(addr, 8192)
        assert k.syscall(eng, 1, SYS_MUNMAP, addr, 8192, 0) == 0
        assert not mem.is_mapped(addr)

    def test_mmap_respects_forbidden(self):
        k, mem, eng = self._kernel()
        k.forbidden.append((k.mmap_base, k.mmap_base + 0x100000))
        addr = k.syscall(eng, 1, SYS_MMAP, 0, 4096, 0)
        assert addr >= k.mmap_base + 0x100000

    def test_mremap_moves_and_copies(self):
        k, mem, eng = self._kernel()
        a = k.syscall(eng, 1, SYS_MMAP, 0, 4096, 0)
        mem.write(a, b"payload!")
        # Block in-place extension by mapping the next page.
        k.syscall(eng, 1, SYS_MMAP, a + 4096, 4096, 0)
        b = k.syscall(eng, 1, SYS_MREMAP, a, 4096, 8192)
        assert b != a
        assert mem.read(b, 8) == b"payload!"
        assert not mem.is_mapped(a)

    def test_file_syscalls_via_guest_memory(self):
        k, mem, eng = self._kernel()
        mem.map(0x5000, PAGE_SIZE, PROT_RW)
        mem.write(0x5000, b"file.txt\0")
        from repro.kernel.fs import O_CREAT, O_RDWR

        fd = k.syscall(eng, 1, SYS_OPEN, 0x5000, O_CREAT | O_RDWR, 0)
        mem.write(0x5100, b"DATA")
        assert k.syscall(eng, 1, SYS_WRITE, fd, 0x5100, 4) == 4
        k.fs.lseek(fd, 0, 0)
        assert k.syscall(eng, 1, SYS_READ, fd, 0x5200, 4) == 4
        assert mem.read(0x5200, 4) == b"DATA"
        assert k.syscall(eng, 1, SYS_CLOSE, fd, 0, 0) == 0

    def test_gettime_settime(self):
        k, mem, eng = self._kernel()
        mem.map(0x5000, PAGE_SIZE, PROT_RW)
        assert k.syscall(eng, 1, SYS_GETTIME, 0x5000, 0, 0) == 0
        sec, usec = struct.unpack("<II", mem.read(0x5000, 8))
        assert (sec, usec) == (0, 100)  # 1000 insns / 10 insns-per-usec
        mem.write(0x5000, struct.pack("<II", 5, 0))
        k.syscall(eng, 1, SYS_SETTIME, 0x5000, 0, 0)
        k.syscall(eng, 1, SYS_GETTIME, 0x5000, 0, 0)
        sec, _ = struct.unpack("<II", mem.read(0x5000, 8))
        assert sec == 5

    def test_signals_and_timers(self):
        k, _, eng = self._kernel()
        old = k.syscall(eng, 1, SYS_SIGACTION, SIGALRM, 0x1234, 0)
        assert old == 0
        assert k.handler_for(SIGALRM) == 0x1234
        k.syscall(eng, 1, SYS_ALARM, 500, 0, 0)
        assert not k.check_timers(1400)
        assert k.check_timers(1500)
        assert k.next_pending(1) == SIGALRM
        k.syscall(eng, 1, SYS_KILL, 2, 9, 0)
        assert k.next_pending(2) == 9

    def test_unknown_syscall_returns_einval(self):
        k, _, eng = self._kernel()
        assert k.syscall(eng, 1, 999, 0, 0, 0) == (-22) & 0xFFFFFFFF
