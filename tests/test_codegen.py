"""The tiered codegen pipeline's mechanics (``--codegen``/``--jit-threshold``).

The differential suites (test_perf_mode, test_fault_precision, test_chaos)
prove the pygen and auto tiers compute the same thing as the closure
engine; this file tests the tiering machinery itself: lazy compilation,
threshold promotion, injected-failure demotion, the content-addressed
pygen source cache, the emitted Python's shape, and the ``--stats=json``
``codegen`` section.
"""

from __future__ import annotations

import json

import pytest

from repro import Options, run_tool
from repro.core.codegen import CODEGEN_MODES, TIERS
from repro.core.options import BadOption

from .helpers import asm_image, native, vg

#: A program with one hot loop (many executions) and cold epilogue
#: blocks (one execution each) — the shape tiering exists for.
HOT_LOOP_SRC = """
        .text
main:   movi r6, 0
        movi r7, 120
loop:   add  r6, r7
        dec  r7
        jnz  loop
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
"""


def run_cg(src, tool="none", **kw):
    kw.setdefault("perf", True)
    return vg(src, tool, **kw)


class TestOptionParsing:
    def test_codegen_flag_values(self):
        o = Options()
        for mode in CODEGEN_MODES:
            assert o.set(f"--codegen={mode}")
            assert o.codegen == mode
        with pytest.raises(BadOption):
            o.set("--codegen=llvm")

    def test_jit_threshold_flag(self):
        o = Options()
        assert o.set("--jit-threshold=3")
        assert o.jit_threshold == 3
        with pytest.raises(BadOption):
            o.set("--jit-threshold=0")


class TestPygenTier:
    def test_all_executed_blocks_reach_pygen(self):
        res = run_cg(HOT_LOOP_SRC, codegen="pygen")
        assert res.exit_code == 0
        cg = res.stats()["codegen"]
        assert cg["mode"] == "pygen"
        assert cg["tier_attaches"]["pygen"] > 0
        assert cg["tier_attaches"]["closures"] == 0
        assert cg["demotions"] == 0
        # Every live block that ever ran is in the pygen tier.
        live = cg["live_blocks"]
        assert set(live) <= {"pygen", "pending"}

    def test_emitted_source_shape(self):
        # The compiled runner carries its source: one def, guest state
        # bound as locals, a writeback batch, and a final return of the
        # (jump-kind, guest-insns) pair.
        res = run_cg(HOT_LOOP_SRC, codegen="pygen")
        tab = res.core.scheduler.transtab
        srcs = [t.compiled_fn.pygen_source for t in tab.all_translations()
                if t.tier == "pygen"]
        assert srcs
        for src in srcs:
            assert src.startswith("def _pygen(ts")
            assert "_cpu.ts = ts" in src          # state bound up front
            assert src.rstrip().rsplit("\n", 1)[-1].lstrip().startswith(
                "return")                          # (jump-kind, insns) exit

    def test_pygen_cache_shares_identical_blocks(self):
        res = run_cg(HOT_LOOP_SRC, codegen="pygen")
        cpu = res.core.scheduler.hostcpu
        assert cpu.pygen_cache_misses == len(cpu._pygen_cache)
        tab = res.core.scheduler.transtab
        by_code = {}
        for t in tab.all_translations():
            if t.tier == "pygen":
                by_code.setdefault(t.code, set()).add(id(t.compiled_fn))
        for fns in by_code.values():
            assert len(fns) == 1
        cpu.flush_code_cache()
        assert len(cpu._pygen_cache) == 0

    def test_pygen_matches_native_without_perf_loop(self):
        # --codegen=pygen composes with the default (non-chaining) loop.
        nat = native(HOT_LOOP_SRC)
        res = vg(HOT_LOOP_SRC, codegen="pygen")
        assert res.stdout == nat.stdout
        assert res.exit_code == nat.exit_code
        assert res.stats()["codegen"]["tier_attaches"]["pygen"] > 0


class TestLazyCompilation:
    def test_translated_but_never_executed_skips_codegen(self):
        # Blocks are translated and inserted before they run; if the run
        # stops in between (here: block budget right after a translate),
        # lazy modes never pay the codegen for the pending block.
        from repro import run_tool

        img = asm_image(HOT_LOOP_SRC)
        res = run_tool(
            "none", img,
            options=Options(log_target="capture", perf=True,
                            codegen="pygen"),
            max_blocks=3,
        )
        cg = res.core.stats_dict(res.outcome)["codegen"]
        assert cg["compiles_deferred"] > cg["first_exec_compiles"]
        assert cg["compiles_avoided"] >= 1
        assert "pending" in cg["live_blocks"]

    def test_eager_mode_compiles_at_insert(self):
        res = run_cg(HOT_LOOP_SRC, codegen="closures")
        cg = res.stats()["codegen"]
        assert cg["compiles_deferred"] == 0
        assert cg["compiles_avoided"] == 0


class TestAutoPromotion:
    def test_hot_blocks_promote_cold_blocks_stay(self):
        res = run_cg(HOT_LOOP_SRC, codegen="auto", jit_threshold=5)
        assert res.exit_code == 0
        cg = res.stats()["codegen"]
        assert cg["mode"] == "auto"
        assert cg["jit_threshold"] == 5
        # The loop block crossed the threshold; one-shot blocks did not.
        assert cg["promotions"] >= 1
        live = cg["live_blocks"]
        assert live.get("pygen", 0) >= 1
        assert live.get("closures", 0) >= 1
        # A promoted block counts an attach in both tiers.
        assert cg["tier_attaches"]["pygen"] == cg["promotions"]

    def test_threshold_one_promotes_everything_executed(self):
        res = run_cg(HOT_LOOP_SRC, codegen="auto", jit_threshold=1)
        cg = res.stats()["codegen"]
        assert cg["live_blocks"].get("closures", 0) == 0
        assert cg["promotions"] == cg["first_exec_compiles"]


class TestInjectedDemotion:
    def test_single_demotion_counted_and_logged(self):
        res = run_cg(HOT_LOOP_SRC, codegen="pygen", inject="pygen@1,seed=0")
        assert res.exit_code == 0
        assert res.stdout == native(HOT_LOOP_SRC).stdout
        assert "pygen compile failure" in res.log
        stats = res.stats()
        assert stats["codegen"]["demotions"] == 1
        assert stats["robustness"]["pygen_demotions"] == 1
        assert stats["robustness"]["injection"]["pygen"]["fired"] == 1
        # The demoted block runs (and stays) in the closure tier.
        assert stats["codegen"]["live_blocks"].get("closures", 0) >= 1

    def test_demoted_block_not_retried(self):
        # Under auto, a failed promotion must not be re-attempted every
        # execution: the block is marked and skipped.
        res = run_cg(HOT_LOOP_SRC, codegen="auto", jit_threshold=2,
                     inject="pygen:1.0,seed=1")
        assert res.exit_code == 0
        tab = res.core.scheduler.transtab
        demoted = [t for t in tab.all_translations() if t.pygen_failed]
        assert demoted
        inj = res.stats()["robustness"]["injection"]["pygen"]
        # Each block consults the injector at most once.
        assert inj["seen"] == res.stats()["codegen"]["demotions"]


class TestStatsSection:
    def test_codegen_section_shape(self):
        res = run_cg(HOT_LOOP_SRC, tool="memcheck", codegen="auto",
                     jit_threshold=3, stats_format="json")
        cg = res.stats()["codegen"]
        for key in ("mode", "jit_threshold", "tier_attaches", "promotions",
                    "demotions", "compiles_deferred", "first_exec_compiles",
                    "compiles_avoided", "compile_seconds", "exec_seconds",
                    "tier_execs", "pygen_cache", "live_blocks"):
            assert key in cg, key
        for tier in TIERS:
            assert tier in cg["tier_attaches"]
            assert tier in cg["compile_seconds"]
        # --stats=json enables per-tier execution sampling.
        assert sum(cg["tier_execs"].values()) > 0
        assert sum(cg["exec_seconds"].values()) > 0
        payload = json.dumps(res.stats())
        assert json.loads(payload)["codegen"]["mode"] == "auto"

    def test_exec_sampling_off_by_default(self):
        res = run_cg(HOT_LOOP_SRC, codegen="pygen")
        cg = res.stats()["codegen"]
        assert sum(cg["tier_execs"].values()) == 0
