"""The ``--perf`` execution mode's correctness story.

Perf mode changes *how* translations execute — content-addressed compiled
runners, multi-link Boring/Call/Ret chaining with registry-severed
invalidation, and a two-tier dispatcher cache — but must never change
*what* they compute.  This suite proves it three ways:

* differentially: random programs (the same hypothesis generator as
  ``tests/test_differential.py``) run under Nulgrind and Memcheck with
  perf on, perf off, and on the reference CPU, and the full architected
  state, data segment, exit code and error reports must agree — including
  under pathologically tiny caches that force constant eviction;
* by regression: FIFO eviction, client-requested discards, munmap and
  self-modifying code must sever chain links eagerly so no stale
  ``chain_next``/``chain_call``/``chain_ret`` or compiled runner is ever
  executed;
* at the unit level: the chain registry's link/sever semantics, the
  eager insert-time compiler, the content-addressed runner cache, and
  every inline operator template the runner generator uses.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from helpers import asm_image, native, programs, ref_run, vg
from repro import Options, assemble, run_tool
from repro.backend.hostcpu import OP_INLINE
from repro.core.translate import Translation
from repro.core.transtab import ChainRegistry, TranslationTable
from repro.ir.ops import get_op


def perf_options(**kw) -> Options:
    kw.setdefault("log_target", "capture")
    kw.setdefault("perf", True)
    return Options(**kw)


def _assert_matches_ref(res, ref_ts, ref_data, data_seg, label):
    sched = res.core.scheduler
    ts = sched.threads[1]
    ref_ts.pc = ts.pc  # both are one-past-halt; keep the comparison strict
    diffs = ref_ts.describe_diff(ts)
    assert not diffs, f"architected state differs ({label}): {diffs}"
    got = sched.memory.read_raw(data_seg.addr, len(data_seg.data))
    assert got == ref_data, f"data segment differs ({label})"


# ---------------------------------------------------------------------------
# Differential: perf on == perf off == reference CPU.
# ---------------------------------------------------------------------------


@settings(max_examples=110, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.sampled_from(["none", "memcheck"]))
def test_random_program_differential_perf(source, tool):
    img = assemble(source, filename="rand")
    ref_ts, ref_data, data_seg = ref_run(img)

    plain = run_tool(tool, img, options=Options(log_target="capture"))
    fast = run_tool(tool, img, options=perf_options())
    _assert_matches_ref(fast, ref_ts, ref_data, data_seg, f"perf/{tool}")
    assert fast.exit_code == plain.exit_code
    assert fast.stdout == plain.stdout
    # Same error reports, in the same order (Memcheck's instrumentation
    # must be oblivious to the execution mode).
    assert [(e.kind, e.addr) for e in fast.errors] == [
        (e.kind, e.addr) for e in plain.errors
    ]


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_random_program_perf_survives_tiny_caches(source):
    """Constant FIFO eviction + conflict misses must not change results.

    A 48-entry translation table forces eviction rounds mid-run (severing
    chains while they are hot) and 16/8-entry dispatcher tiers force the
    megacache promotion/demotion machinery to run constantly.
    """
    img = assemble(source, filename="rand")
    ref_ts, ref_data, data_seg = ref_run(img)
    res = run_tool(
        "none",
        img,
        options=perf_options(
            transtab_entries=48, dispatch_cache_size=16, megacache_size=8
        ),
    )
    _assert_matches_ref(res, ref_ts, ref_data, data_seg, "tiny-caches")


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.sampled_from(["none", "memcheck"]))
def test_random_program_differential_codegen_tiers(source, tool):
    """The pygen and auto tiers must be bit-identical to the closure
    engine: same architected state, data segment, output, error reports
    and guest instruction count."""
    img = assemble(source, filename="rand")
    ref_ts, ref_data, data_seg = ref_run(img)

    plain = run_tool(tool, img, options=Options(log_target="capture",
                                                codegen="closures"))
    for label, opts in (
        ("pygen", perf_options(codegen="pygen")),
        ("auto", perf_options(codegen="auto", jit_threshold=2)),
        ("traces", perf_options(codegen="traces", trace_threshold=2)),
    ):
        res = run_tool(tool, img, options=opts)
        _assert_matches_ref(res, ref_ts, ref_data, data_seg,
                            f"{label}/{tool}")
        assert res.exit_code == plain.exit_code, label
        assert res.stdout == plain.stdout, label
        assert res.outcome.guest_insns == plain.outcome.guest_insns, label
        assert [(e.kind, e.addr) for e in res.errors] == [
            (e.kind, e.addr) for e in plain.errors
        ], label


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_random_program_pygen_survives_tiny_caches(source):
    """Eviction rounds must discard pygen-tier blocks as safely as
    closure-tier ones (same transtab path, same chain severing)."""
    img = assemble(source, filename="rand")
    ref_ts, ref_data, data_seg = ref_run(img)
    res = run_tool(
        "none",
        img,
        options=perf_options(
            codegen="pygen",
            transtab_entries=48, dispatch_cache_size=16, megacache_size=8
        ),
    )
    _assert_matches_ref(res, ref_ts, ref_data, data_seg, "pygen-tiny-caches")


def test_differential_example_budget():
    """The harness above covers >= 200 random programs per full run."""
    budget = 110 + 50  # examples per @given above
    # test_differential.py adds 60 + 20 through the same generator.
    assert budget + 80 >= 200


# ---------------------------------------------------------------------------
# Eviction / invalidation regressions.
# ---------------------------------------------------------------------------

CALL_HEAVY_SRC = """
        .text
main:   movi r6, 400
        movi r7, 0
loop:   mov  r0, r6
        call fn1
        add  r7, r0
        call fn2
        add  r7, r0
        call fn3
        add  r7, r0
        dec  r6
        jnz  loop
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
fn1:    addi r0, 3
        ret
fn2:    movi r0, 2
        mul  r0, r6
        ret
fn3:    mov  r0, r6
        andi r0, 15
        ret
"""


@pytest.mark.parametrize("codegen", ["closures", "pygen", "auto", "traces"])
def test_fifo_eviction_with_live_chains_matches_native(codegen):
    nat = native(CALL_HEAVY_SRC)
    res = vg(
        CALL_HEAVY_SRC,
        options=perf_options(codegen=codegen, jit_threshold=3,
                             trace_threshold=3,
                             transtab_entries=12, dispatch_cache_size=16,
                             megacache_size=8),
    )
    assert res.stdout == nat.stdout
    assert res.exit_code == nat.exit_code
    tab = res.core.scheduler.transtab
    assert tab.stats.evict_rounds > 0, "fixture too large to force eviction"
    assert tab.chains.links_severed > 0, "eviction never cut a live chain"
    # Whatever the churn, no stored translation may hold a link to a dead
    # one, and no dead translation may still be linked from anywhere.
    for t in tab.all_translations():
        for slot in ("chain_next", "chain_call", "chain_ret"):
            succ = getattr(t, slot)
            assert succ is None or not succ.dead, (slot, hex(t.guest_addr))


def test_call_ret_chains_are_used():
    res = vg(CALL_HEAVY_SRC, options=perf_options())
    tab = res.core.scheduler.transtab
    linked_slots = set()
    for t in tab.all_translations():
        for slot in ("chain_next", "chain_call", "chain_ret"):
            if getattr(t, slot) is not None:
                linked_slots.add(slot)
    assert linked_slots == {"chain_next", "chain_call", "chain_ret"}
    assert res.core.scheduler.dispatcher.stats.chained > 0


@pytest.mark.parametrize("codegen", ["closures", "pygen", "auto", "traces"])
def test_smc_discard_mid_run_under_perf(codegen):
    """Rewriting already-translated code must discard the old translation,
    sever its chains, and never execute the stale compiled runner —
    whichever codegen tier the stale block was in."""
    src = """
        .text
main:   movi r0, 7          ; mmap(0, 4096, rwx)
        movi r1, 0
        movi r2, 4096
        movi r3, 7
        syscall
        mov  r6, r0
        ; write a tiny function: movi r0, 5 ; ret
        movi r1, 0x11
        stb  [r6], r1
        movi r1, 0
        stb  [r6+1], r1
        sti  [r6+2], 5
        movi r1, 3
        stb  [r6+6], r1
        call r6
        push r0
        call putint
        addi sp, 4
        ; now patch the immediate: the same address must return 9
        sti  [r6+2], 9
        call r6
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
    res = vg(src, options=perf_options(smc_check="all", codegen=codegen))
    assert res.stdout.split() == ["5", "9"]
    sched = res.core.scheduler
    assert sched.transtab.stats.discarded >= 1
    assert sched.dispatcher.stats.smc_flushes >= 1


def test_munmap_discard_under_perf(run_both):
    src = """
        .text
main:   movi r0, 7
        movi r1, 0
        movi r2, 4096
        movi r3, 7
        syscall
        mov  r6, r0
        movi r1, 0x11
        stb  [r6], r1
        movi r1, 0
        stb  [r6+1], r1
        sti  [r6+2], 5
        movi r1, 3
        stb  [r6+6], r1
        call r6
        push r0
        call putint
        addi sp, 4
        movi r0, 8
        mov  r1, r6
        movi r2, 4096
        syscall
        movi r0, 0
        ret
"""
    nat = native(src)
    res = vg(src, options=perf_options())
    assert res.stdout == nat.stdout == "5\n"
    assert res.core.scheduler.transtab.stats.discarded >= 1


# ---------------------------------------------------------------------------
# Unit: chain registry and table integration.
# ---------------------------------------------------------------------------


def _mk(addr: int, code: bytes = b"") -> Translation:
    return Translation(guest_addr=addr, code=code, ranges=((addr, 8),))


class TestChainRegistry:
    def test_link_sets_slot_and_counts(self):
        reg = ChainRegistry()
        a, b = _mk(0x100), _mk(0x200)
        reg.link(a, "chain_next", b)
        assert a.chain_next is b
        assert reg.links_made == 1 and len(reg) == 1

    def test_relink_replaces_old_target(self):
        reg = ChainRegistry()
        a, b, c = _mk(0x100), _mk(0x200), _mk(0x300)
        reg.link(a, "chain_next", b)
        reg.link(a, "chain_next", c)
        assert a.chain_next is c
        assert len(reg) == 1  # the a->b record is gone
        reg.sever(b)  # must be a no-op for a's slot now
        assert a.chain_next is c

    def test_link_same_target_is_noop(self):
        reg = ChainRegistry()
        a, b = _mk(0x100), _mk(0x200)
        reg.link(a, "chain_next", b)
        reg.link(a, "chain_next", b)
        assert reg.links_made == 1 and len(reg) == 1

    def test_sever_cuts_incoming_and_outgoing(self):
        reg = ChainRegistry()
        a, b, c = _mk(0x100), _mk(0x200), _mk(0x300)
        reg.link(a, "chain_next", b)   # incoming to b
        reg.link(b, "chain_call", c)   # outgoing from b
        reg.sever(b)
        assert a.chain_next is None
        assert b.chain_call is None
        assert reg.links_severed == 2
        assert len(reg) == 0

    def test_identity_not_equality(self):
        """Two field-equal Translations must be tracked separately
        (Translation is a dataclass: == is field-wise)."""
        reg = ChainRegistry()
        a1, a2, b = _mk(0x100), _mk(0x100), _mk(0x200)
        assert a1 == a2 and a1 is not a2
        reg.link(a1, "chain_next", b)
        reg.link(a2, "chain_next", b)
        reg.sever(b)
        assert a1.chain_next is None and a2.chain_next is None
        assert reg.links_severed == 2


class TestTableChainIntegration:
    def test_eviction_severs_links(self):
        tab = TranslationTable(entries=8)
        ts = [_mk(0x1000 + 8 * i) for i in range(8)]
        for t in ts:
            tab.insert(t)
        # Chain the first two oldest together; the next insert evicts them.
        tab.chain(ts[0], "chain_next", ts[1])
        tab.chain(ts[1], "chain_ret", ts[0])
        tab.insert(_mk(0x9000))
        assert ts[0].dead and ts[0].chain_next is None
        assert ts[1].chain_ret is None
        assert tab.chains.links_severed >= 2

    def test_replace_same_address_kills_old(self):
        tab = TranslationTable(entries=8)
        old, other = _mk(0x1000), _mk(0x2000)
        tab.insert(old)
        tab.insert(other)
        tab.chain(other, "chain_next", old)
        tab.insert(_mk(0x1000))  # same guest address: replaces
        assert old.dead
        assert other.chain_next is None

    def test_discard_severs(self):
        tab = TranslationTable(entries=8)
        a, b = _mk(0x1000), _mk(0x2000)
        tab.insert(a)
        tab.insert(b)
        tab.chain(a, "chain_next", b)
        assert tab.discard(0x2000)
        assert a.chain_next is None and b.dead

    def test_insert_time_compiler_runs_eagerly(self):
        compiled = []
        tab = TranslationTable(entries=8)
        tab.set_compiler(lambda t: compiled.append(t) or setattr(
            t, "compiled_fn", lambda ts: ("Boring", 0)))
        t = _mk(0x1000)
        tab.insert(t)
        assert compiled == [t]
        assert t.compiled_fn is not None
        tab.insert(t)  # already compiled: not recompiled
        assert compiled == [t]


# ---------------------------------------------------------------------------
# Unit: the content-addressed runner cache and the inline op templates.
# ---------------------------------------------------------------------------


def test_content_addressed_runner_sharing():
    # This tests the PR-1 eager insert-time path specifically, so pin
    # the closure tier (lazy tiers defer compilation to first execution).
    res = vg(CALL_HEAVY_SRC, options=perf_options(codegen="closures"))
    cpu = res.core.scheduler.hostcpu
    # Every translation compiled exactly once per unique byte string...
    assert cpu.code_cache_misses == len(cpu._code_cache)
    tab = res.core.scheduler.transtab
    by_code = {}
    for t in tab.all_translations():
        assert t.compiled_fn is not None  # eager insert-time compilation
        by_code.setdefault(t.code, set()).add(id(t.compiled_fn))
    # ...and byte-identical translations share one runner object.
    for code, fns in by_code.items():
        assert len(fns) == 1
    cpu.flush_code_cache()
    assert len(cpu._code_cache) == 0


def test_op_inline_templates_match_op_table():
    """Every inline expression the runner generator may emit must agree
    with the registered semantic function on random and edge inputs."""
    rng = random.Random(1234)
    for name, tmpl in sorted(OP_INLINE.items()):
        op = get_op(name)
        cases = []
        for _ in range(64):
            cases.append([rng.randrange(1 << t.bits) for t in op.args])
        edges = [0, 1]
        for t in op.args:
            edges += [(1 << t.bits) - 1, 1 << (t.bits - 1)]
        for v in edges:
            cases.append([min(v, (1 << t.bits) - 1) for t in op.args])
        for vals in cases:
            env = dict(zip("ab", vals))
            expr = tmpl.format(a="a", b="b") if len(vals) > 1 else tmpl.format(a="a")
            got = eval(expr, {}, env)
            assert int(got) == int(op.apply(*vals)), (name, vals)
