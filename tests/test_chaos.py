"""Chaos harness: seeded fault-injection runs must always end cleanly.

Every run below executes under an --inject plan that fails syscalls,
posts synthetic faults, flushes translations, evicts table chunks or
breaks the JIT mid-run.  The contract being tested is the paper's
robustness requirement: whatever happens to the guest, the framework
itself finishes with a well-formed RunOutcome (normal exit or a guest
signal) — never a host traceback — and identical plans replay
identically.
"""

from __future__ import annotations

import itertools

import pytest

from repro import Options, run_tool
from repro.core.errors import ExitCode
from repro.core.faultinject import BadInjectSpec, FaultInjector

from .helpers import asm_image

MAX_BLOCKS = 200_000

#: Exercises the syscall-failure injections: a guest that retries EINTR
#: and tolerates ENOMEM, so a fault-free plan and a firing plan both end
#: in a normal exit (with different printed counts).
ALLOC_IO_SRC = """
        .text
main:   movi r6, 0           ; successful mmaps
        movi r7, 6           ; attempts
mloop:  movi r0, 7           ; mmap(0, 4096, rw)
        movi r1, 0
        movi r2, 4096
        movi r3, 6
        syscall
        test r0, r0
        js   mfail           ; -ENOMEM: tolerated
        sti  [r0], 77        ; touch the new page
        inc  r6
mfail:  dec  r7
        jnz  mloop
        movi r0, 6           ; brk(0): query (also an injection point)
        movi r1, 0
        syscall
        movi r7, 5           ; EINTR-retried writes
wloop:  movi r3, 3           ; bounded retries per write
retry:  movi r0, 3           ; write(1, msg, 2)
        movi r1, 1
        movi r2, msg
        push r3
        movi r3, 2
        syscall
        pop  r3
        test r0, r0
        jns  wok
        dec  r3
        jnz  retry
wok:    dec  r7
        jnz  wloop
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
        .data
msg:    .asciz "x\\n"
"""

#: Exercises the dispatch-level injections (segv / smc-flush / evict /
#: isel): pure compute with a SIGSEGV handler, so even synthetic faults
#: are absorbed and the final sum is deterministic.
CPU_SRC = """
        .text
main:   movi r0, 11          ; sigaction(SIGSEGV, handler)
        movi r1, 11
        movi r2, handler
        syscall
        movi r6, 0
        movi r7, 400
loop:   mov  r1, r7
        mul  r1, r7
        add  r6, r1
        andi r6, 0xFFFFF
        dec  r7
        jnz  loop
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
handler:
        ld   r1, [counter]   ; count absorbed synthetic faults
        inc  r1
        st   [counter], r1
        ret
        .data
counter: .word 0
"""

SPECS = [
    "mmap-enomem@2,eintr:0.2,seed={seed}",
    "segv@3,smc-flush:0.05,evict:0.02,seed={seed}",
    "isel@1,eintr:0.1,evict:0.02,mmap-enomem:0.2,seed={seed}",
]
SEEDS = range(6)

#: Execution engines: the historical pair plus the PR-3 codegen tiers.
#: auto uses a low threshold so chaos runs actually cross the promotion
#: boundary while injections are firing around them.
MODES = {
    "plain": {},
    "perf": {"perf": True},
    "pygen": {"perf": True, "codegen": "pygen"},
    "auto": {"perf": True, "codegen": "auto", "jit_threshold": 3},
}

CONFIGS = list(itertools.product(
    [("alloc-io", ALLOC_IO_SRC), ("cpu", CPU_SRC)],
    ["none", "memcheck"],
    list(MODES),
))


def chaos_run(img, tool, mode, inject, record=None, replay=None):
    opts = Options(log_target="capture", inject=inject, record=record,
                   replay=replay, **MODES[mode])
    return run_tool(tool, img, options=opts, max_blocks=MAX_BLOCKS)


def outcome_fingerprint(res):
    o = res.outcome
    return (res.exit_code, res.stdout, o.fatal_signal, o.stopped_reason,
            o.blocks_executed, o.guest_insns)


def assert_well_formed(res, ctx):
    """The run finished with a legal outcome — never a host crash."""
    o = res.outcome
    assert res.exit_code == o.exit_code, ctx
    if o.fatal_signal is not None:
        assert 1 <= o.fatal_signal < 32, ctx
        assert res.exit_code == ExitCode.for_signal(o.fatal_signal), ctx
    elif o.stopped_reason is not None:
        assert o.stopped_reason in ("deadlock", "block-budget"), ctx
        assert res.exit_code in (ExitCode.BLOCK_BUDGET, ExitCode.DEADLOCK), ctx


@pytest.mark.parametrize(
    "prog,tool,mode", CONFIGS,
    ids=[f"{p[0]}-{t}-{m}" for p, t, m in CONFIGS],
)
class TestChaosMatrix:
    """2 programs x 2 tools x 4 engines x 18 seeded plans, each run
    recorded and then replayed once (the replay oracle verifies every
    scheduler pick, syscall result and injection event in-engine — a far
    stronger determinism check than re-running and comparing the end
    state)."""

    def test_injected_runs_end_cleanly_and_replay(self, prog, tool, mode,
                                                  tmp_path):
        _, src = prog
        img = asm_image(src)
        log = str(tmp_path / "chaos.rrlog")
        for spec_tpl in SPECS:
            for seed in SEEDS:
                inject = spec_tpl.format(seed=seed)
                ctx = (prog[0], tool, mode, inject)
                res = chaos_run(img, tool, mode, inject, record=log)
                assert_well_formed(res, ctx)
                rep = chaos_run(img, tool, mode, None, replay=log)
                assert outcome_fingerprint(rep) == \
                    outcome_fingerprint(res), ctx
                assert rep.stats()["replay"]["divergences"] == 0, ctx


class TestDeterminism:
    @pytest.mark.parametrize("mode", list(MODES))
    def test_identical_plans_record_byte_identical_logs(self, mode, tmp_path):
        # Regression guard for nondeterminism leaks: two runs under the
        # same plan must produce *byte-identical* event logs — every
        # decision, not just the final fingerprint, must match.
        img = asm_image(ALLOC_IO_SRC)
        for spec_tpl in SPECS:
            inject = spec_tpl.format(seed=3)
            pa = str(tmp_path / "a.rrlog")
            pb = str(tmp_path / "b.rrlog")
            a = chaos_run(img, "none", mode, inject, record=pa)
            b = chaos_run(img, "none", mode, inject, record=pb)
            assert outcome_fingerprint(a) == outcome_fingerprint(b), inject
            with open(pa, "rb") as fa, open(pb, "rb") as fb:
                assert fa.read() == fb.read(), inject

    @pytest.mark.parametrize("mode", list(MODES))
    def test_neverfiring_plan_is_bit_identical_to_no_plan(self, mode):
        # An injector whose rules never fire must not perturb the run at
        # all: fault-free replays stay bit-identical.
        for src in (ALLOC_IO_SRC, CPU_SRC):
            img = asm_image(src)
            base = chaos_run(img, "none", mode, inject=None)
            armed = chaos_run(img, "none", mode,
                              inject="mmap-enomem@999999,segv@999999,seed=5")
            assert outcome_fingerprint(base) == outcome_fingerprint(armed)
            assert base.exit_code == 0

    def test_engines_agree_under_injection(self):
        # The same syscall-level plan must produce the same architected
        # outcome whichever engine executes the guest (dispatch-level
        # events like evict change block counts, so use a syscall plan).
        for src in (ALLOC_IO_SRC, CPU_SRC):
            img = asm_image(src)
            inject = "mmap-enomem@2,eintr:0.2,seed=7"
            runs = {m: chaos_run(img, "none", m, inject) for m in MODES}
            ref = runs["plain"]
            for mode, res in runs.items():
                assert res.exit_code == ref.exit_code, mode
                assert res.stdout == ref.stdout, mode
                assert res.outcome.guest_insns == ref.outcome.guest_insns, mode


class TestJitQuarantine:
    @pytest.mark.parametrize("mode", list(MODES))
    @pytest.mark.parametrize("tool", ["none", "memcheck"])
    def test_isel_failure_degrades_to_interpreter(self, tool, mode):
        # Acceptance: an injected isel failure quarantines the block into
        # the IR interpreter; the run finishes with the *correct* output.
        img = asm_image(CPU_SRC)
        clean = chaos_run(img, tool, mode, inject=None)
        assert clean.exit_code == 0
        broken = chaos_run(img, tool, mode, inject="isel@1,seed=1")
        assert broken.exit_code == 0
        assert broken.stdout == clean.stdout
        assert "quarantining to IR interpreter" in broken.log
        rob = broken.stats()["robustness"]
        assert rob["quarantined_blocks"] >= 1
        assert rob["injection"]["isel"]["fired"] == 1

    def test_every_block_quarantined_still_correct(self):
        # Degenerate degradation: *every* translation falls back to the
        # interpreter (isel fails 100% of the time) and the program still
        # produces the right answer under instrumentation.
        img = asm_image(CPU_SRC)
        clean = chaos_run(img, "memcheck", "plain", inject=None)
        broken = chaos_run(img, "memcheck", "plain", inject="isel:1.0,seed=2")
        assert broken.exit_code == clean.exit_code == 0
        assert broken.stdout == clean.stdout
        rob = broken.stats()["robustness"]
        assert rob["quarantined_blocks"] >= rob["injection"]["isel"]["fired"] > 0


class TestPygenDemotion:
    @pytest.mark.parametrize("mode", ["pygen", "auto"])
    @pytest.mark.parametrize("tool", ["none", "memcheck"])
    def test_pygen_failure_demotes_to_closures(self, tool, mode):
        # Acceptance: an injected pygen compile failure demotes the block
        # to the closure tier — correct output, counted in both the
        # robustness and codegen stats, never a host traceback.
        img = asm_image(CPU_SRC)
        clean = chaos_run(img, tool, mode, inject=None)
        assert clean.exit_code == 0
        broken = chaos_run(img, tool, mode, inject="pygen@1,seed=1")
        assert broken.exit_code == 0
        assert broken.stdout == clean.stdout
        assert "pygen compile failure" in broken.log
        stats = broken.stats()
        assert stats["robustness"]["pygen_demotions"] >= 1
        assert stats["robustness"]["injection"]["pygen"]["fired"] == 1
        assert stats["codegen"]["demotions"] >= 1
        assert stats["codegen"]["tier_attaches"]["closures"] >= 1

    def test_every_pygen_compile_failing_still_correct(self):
        # Degenerate degradation: *every* pygen compile fails and the
        # whole program runs in the closure tier, still correct.
        img = asm_image(CPU_SRC)
        clean = chaos_run(img, "memcheck", "pygen", inject=None)
        broken = chaos_run(img, "memcheck", "pygen", inject="pygen:1.0,seed=2")
        assert broken.exit_code == clean.exit_code == 0
        assert broken.stdout == clean.stdout
        stats = broken.stats()
        assert stats["codegen"]["tier_attaches"]["pygen"] == 0
        assert (stats["codegen"]["demotions"]
                == stats["robustness"]["injection"]["pygen"]["fired"] > 0)


class TestInjectSpecValidation:
    def test_bad_specs_rejected(self):
        for bad in ("frobnicate@1", "mmap-enomem@0", "eintr:1.5",
                    "segv@x", "seed=zz"):
            with pytest.raises(BadInjectSpec):
                FaultInjector(bad)

    def test_option_validates_eagerly(self):
        from repro.core.options import BadOption, Options as O

        o = O()
        with pytest.raises(BadOption):
            o.set("--inject=unknown-event@1")
        assert o.set("--inject=mmap-enomem@2,seed=4")
        assert o.inject == "mmap-enomem@2,seed=4"

    def test_stats_report_counts(self):
        inj = FaultInjector("eintr@2,seed=0")
        assert inj.eintr() is False
        assert inj.eintr() is True
        assert inj.eintr() is False
        assert inj.stats() == {"eintr": {"seen": 3, "fired": 1}}
