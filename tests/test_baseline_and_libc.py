"""Tests for the C&A baseline framework and tools, the host libc, the
loader, and the errors/suppressions machinery."""

import pytest

from repro.baseline.ca_tools import CABBCount, CAICount, CANull, CATaint, CATracer
from repro.baseline.framework import CARunner, InsInfo, run_ca
from repro.core.errors import ErrorManager, Frame, parse_suppressions
from repro.guest.encoding import decode
from repro.guest.loader import load_program
from repro.guest.program import VxImage
from repro.kernel.kernel import Kernel
from repro.kernel.memory import GuestMemory

from helpers import asm_image, native, vg


class TestCAFramework:
    LOOP = """
        .text
main:   movi r0, 500
        movi r1, 0
loop:   ld   r2, [buf]
        add  r1, r2
        st   [buf+4], r1
        dec  r0
        jnz  loop
        movi r0, 0
        ret
        .data
buf:    .word 3, 0
"""

    def test_null_tool_matches_native(self):
        img = asm_image(self.LOOP)
        nat = native(img)
        res = run_ca(img, CANull())
        assert (res.exit_code, res.stdout) == (nat.exit_code, nat.stdout)
        assert res.guest_insns == nat.guest_insns

    def test_bb_and_insn_counters(self):
        img = asm_image(self.LOOP)
        nat = native(img)
        icnt = CAICount()
        run_ca(img, icnt)
        assert icnt.count == nat.guest_insns
        bb = CABBCount()
        run_ca(img, bb)
        assert 500 <= bb.count <= nat.guest_insns

    def test_tracer_matches_dr_tracer(self):
        """The ~30-line C&A tracer and the ~100-line D&R tracer must see
        the same memory accesses."""
        img = asm_image(self.LOOP)
        ca = CATracer()
        run_ca(img, ca)
        dr = vg(img, "tracegrind")
        ca_mem = [e for e in ca.events if e[0] in "LS"]
        dr_mem = [e for e in dr.tool.events if e[0] in "LS"]
        assert ca_mem == dr_mem

    def test_tracer_is_much_smaller_than_dr_version(self):
        import inspect

        from repro.baseline import ca_tools
        from repro.tools import tracegrind

        ca_lines = len(inspect.getsource(ca_tools.CATracer).splitlines())
        dr_lines = len(inspect.getsource(tracegrind).splitlines())
        # Section 5.1: ~30 lines in Pin vs ~100 in Valgrind.
        assert ca_lines < dr_lines / 2

    def test_annotations_describe_memory_refs(self):
        img = asm_image(self.LOOP)
        seg = img.text_segment
        main = img.symbols["main"]
        infos = []
        addr = main
        for _ in range(7):
            insn = decode(seg.data, addr - seg.addr, addr)
            infos.append(InsInfo(insn))
            addr += insn.length
        by_mnem = {i.mnemonic: i for i in infos}
        assert by_mnem["ld"].mem_refs[0].size == 4
        assert not by_mnem["ld"].mem_refs[0].is_write
        assert by_mnem["st"].mem_refs[0].is_write
        assert by_mnem["movi"].mem_refs == ()
        assert 2 in by_mnem["add"].regs_read  # wait: add r1, r2 reads r2
        assert 1 in by_mnem["add"].regs_written

    def test_threads_work_under_ca(self):
        src = """
        .text
main:   movi  r0, 14
        movi  r1, worker
        movi  r2, 0
        movi  r3, 3
        syscall
        mov   r1, r0
        movi  r0, 16
        syscall
        push  r0
        call  putint
        addi  sp, 4
        movi  r0, 0
        ret
worker: ld    r1, [sp+4]
        mul   r1, r1
        movi  r0, 15
        syscall
        halt
"""
        img = asm_image(src)
        res = run_ca(img, CAICount())
        assert res.stdout.strip() == "9"


class TestCATaint:
    def test_taint_flow_int_code(self):
        img = asm_image("""
        .text
main:   movi r0, 2           ; read(0, buf, 4)
        movi r1, 0
        movi r2, buf
        movi r3, 4
        syscall
        ld   r1, [buf]
        andi r1, 3
        addi r1, t
        jmp  r1
t:      movi r0, 0
        ret
        .data
buf:    .word 0
""")
        tool = CATaint()
        runner = CARunner(img, tool, stdin=b"\x01\x02\x03\x04")
        # C&A has no events system: the tool taints read() results by hand.
        orig_syscall = runner.kernel.syscall

        def tainting_syscall(engine, tid, num, a1, a2, a3):
            r = orig_syscall(engine, tid, num, a1, a2, a3)
            if num == 2 and isinstance(r, int) and r > 0:
                tool.taint_range(a2, r)
            return r

        runner.kernel.syscall = tainting_syscall
        runner.run()
        assert tool.tainted_jumps == 1

    def test_fp_code_is_not_handled(self):
        """Like TaintTrace and LIFT, the C&A shadow tool cannot follow
        taint through FP code — the D&R tool can (Section 5.4)."""
        src = """
        .text
main:   movi r0, 2           ; read(0, buf, 4)
        movi r1, 0
        movi r2, buf
        movi r3, 4
        syscall
        ld   r1, [buf]
        andi r1, 3
        ficvt f0, r1          ; launder the taint through FP...
        fcvti r1, f0
        st   [buf], r1
        ld   r1, [buf]
        addi r1, t
        jmp  r1
t:      movi r0, 0
        ret
        .data
buf:    .word 0
"""
        img = asm_image(src)
        # The D&R taint tool follows the flow...
        dr = vg(img, "taintcheck", stdin=b"\0\0\0\0")
        assert [e.kind for e in dr.errors] == ["TaintedJump"]
        # ...the C&A tool loses it (a false negative) and knows it skipped.
        tool = CATaint()
        runner = CARunner(img, tool, stdin=b"\0\0\0\0")
        orig_syscall = runner.kernel.syscall

        def tainting_syscall(engine, tid, num, a1, a2, a3):
            r = orig_syscall(engine, tid, num, a1, a2, a3)
            if num == 2 and isinstance(r, int) and r > 0:
                tool.taint_range(a2, r)
            return r

        runner.kernel.syscall = tainting_syscall
        runner.run()
        assert tool.tainted_jumps == 0
        assert tool.unhandled_fp_simd > 0


class TestLibc:
    def test_string_functions(self, run_both):
        src = """
        .text
main:   pushi src1
        pushi dst
        call strcpy
        addi sp, 8
        push r0
        call puts
        addi sp, 4
        pushi src1
        pushi dst
        call strcmp
        addi sp, 8
        push r0
        call putint
        addi sp, 4
        pushi other
        pushi dst
        call strcmp
        addi sp, 8
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
src1:   .asciz "abc"
other:  .asciz "abd"
dst:    .space 16
"""
        nat, _ = run_both(src)
        assert nat.stdout.split() == ["abc", "0", "-1"]

    def test_memcpy_memmove_overlap(self, run_both):
        src = """
        .text
main:   pushi 6
        pushi buf
        pushi buf+2
        call memmove          ; overlapping: must shift correctly
        addi sp, 12
        pushi buf
        call puts
        addi sp, 4
        movi r0, 0
        ret
        .data
buf:    .asciz "abcdefgh"
"""
        nat, _ = run_both(src)
        assert nat.stdout.strip() == "ababcdef"

    def test_printf_subset(self, run_both):
        src = """
        .text
main:   pushi name
        pushi 255
        pushi -5
        pushi fmt
        call printf
        addi sp, 16
        movi r0, 0
        ret
        .data
fmt:    .asciz "d=%d x=%x s=%s %%\\n"
name:   .asciz "vx"
"""
        nat, _ = run_both(src)
        assert nat.stdout == "d=-5 x=ff s=vx %\n"

    def test_atoi_rand_deterministic(self, run_both):
        src = """
        .text
main:   pushi numstr
        call atoi
        addi sp, 4
        push r0
        call putint
        addi sp, 4
        pushi 42
        call srand
        addi sp, 4
        call rand
        mov  r6, r0
        pushi 42
        call srand
        addi sp, 4
        call rand
        cmp  r0, r6
        sete r1
        push r1
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
numstr: .asciz "  -123xyz"
"""
        nat, _ = run_both(src)
        assert nat.stdout.split() == ["-123", "1"]

    def test_malloc_alignment_and_reuse(self, run_both):
        src = """
        .text
main:   pushi 10
        call malloc
        addi sp, 4
        mov  r6, r0
        andi r0, 7            ; payloads are 8-byte aligned
        push r0
        call putint
        addi sp, 4
        push r6
        call free
        addi sp, 4
        pushi 10
        call malloc           ; same size class: reused
        addi sp, 4
        sub  r0, r6
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        nat, _ = run_both(src)
        assert nat.stdout.split() == ["0", "0"]


class TestLoader:
    def test_argv_layout(self, run_both):
        src = """
        .text
main:   ld   r0, [sp+4]       ; argc
        push r0
        call putint
        addi sp, 4
        ld   r1, [sp+8]       ; argv
        ld   r0, [r1+4]       ; argv[1]
        push r0
        call puts
        addi sp, 4
        movi r0, 0
        ret
"""
        nat, _ = run_both(src, argv=["prog", "hello-arg", "x"])
        assert nat.stdout.split() == ["3", "hello-arg"]

    def test_script_interpreter_loading(self):
        from repro import Options, Valgrind, assemble, build_source

        interp_src = """
        .text
main:   ld   r1, [sp+8]       ; argv
        ld   r0, [r1+4]       ; argv[1] == the script path
        push r0
        call puts
        addi sp, 4
        movi r0, 0
        ret
"""
        interp = assemble(build_source(interp_src), filename="interp")
        script = VxImage(name="myscript", interpreter="interp")
        vgr = Valgrind("none", Options(log_target="capture"))
        res = vgr.run(script, resolve_image=lambda name: interp)
        assert res.stdout.strip() == "myscript"

    def test_brk_starts_after_data(self):
        img = asm_image("main: movi r0, 0\n ret\n.data\nx: .space 100\n")
        mem = GuestMemory()
        k = Kernel(mem)
        load_program(img, k)
        data_end = max(s.end for s in img.segments)
        assert k.brk_base >= data_end


class TestErrorsAndSuppressions:
    def _mgr(self, sups=""):
        logs = []
        mgr = ErrorManager(
            "memcheck", logs.append, lambda pc: Frame(pc, f"fn_{pc:x}", 0, "")
        )
        if sups:
            mgr.load_suppressions(sups)
        return mgr, logs

    def test_dedup_counts(self):
        mgr, logs = self._mgr()
        assert mgr.record("K", "msg", 1, [0x10, 0x20]) is not None
        assert mgr.record("K", "msg", 1, [0x10, 0x20]) is None  # duplicate
        assert mgr.record("K", "msg", 1, [0x30]) is not None    # new context
        assert mgr.total_errors == 3 and mgr.unique_errors == 2

    def test_suppression_matching(self):
        sup = """
{
   ignore-alloc-noise
   memcheck:UninitValue
   fun:fn_10
   fun:fn_2*
}
"""
        mgr, logs = self._mgr(sup)
        assert mgr.record("UninitValue", "m", 1, [0x10, 0x20]) is None
        assert mgr.suppressed_counts["ignore-alloc-noise"] == 1
        # Different kind: not suppressed.
        assert mgr.record("InvalidRead", "m", 1, [0x10, 0x20]) is not None
        # Different stack: not suppressed.
        assert mgr.record("UninitValue", "m", 1, [0x30, 0x20]) is not None

    def test_wrong_tool_suppression_ignored(self):
        mgr, _ = self._mgr("{\n n\n cachegrind:K\n fun:*\n}\n")
        assert mgr.record("K", "m", 1, [0x10]) is not None

    def test_summary(self):
        mgr, logs = self._mgr()
        mgr.record("K", "m", 1, [0x1])
        mgr.summarise()
        assert any("ERROR SUMMARY: 1 errors from 1 contexts" in l for l in logs)

    def test_parse_multiple_suppressions(self):
        sups = parse_suppressions(
            "{\n a\n t:K1\n fun:x\n}\njunk\n{\n b\n t:K2\n}\n"
        )
        assert [s.name for s in sups] == ["a", "b"]
