"""Property tests: the flat paged shadow memory against a byte-at-a-time
reference model.

The reference keeps one ``(abit, vbyte)`` per address in a plain dict —
the obviously-correct implementation the paper's two-level table
optimises.  Random operation sequences (deliberately biased toward page
boundaries, whole-page ranges, and page-crossing ranges) must leave both
models observationally equal, including after copy-on-write promotion of
distinguished secondaries.  A second group checks the fast-map
invariants the pygen inline paths rely on, and that the codegen helper
tables stay in sync with the instrumenter's helper names.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tools.memcheck.shadow import (
    PAGE_SIZE,
    ShadowMemory,
    VBITS_DEF,
    VBITS_UNDEF,
)
from repro.tools.memcheck import shadow as shadow_mod


BASE = 0x40000  # page-aligned playground start
NPAGES = 4
SPAN = NPAGES * PAGE_SIZE


class RefShadow:
    """Byte-at-a-time reference: dict of addr -> (abit, vbyte)."""

    def __init__(self, default="noaccess"):
        self._d = {}
        self._default = (0, VBITS_UNDEF) if default == "noaccess" else (1, VBITS_DEF)

    def _get(self, addr):
        return self._d.get(addr & 0xFFFFFFFF, self._default)

    def _set(self, addr, a, v):
        self._d[addr & 0xFFFFFFFF] = (a, v)

    def make_noaccess(self, addr, size):
        for i in range(size):
            self._set(addr + i, 0, VBITS_UNDEF)

    def make_undefined(self, addr, size):
        for i in range(size):
            self._set(addr + i, 1, VBITS_UNDEF)

    def make_defined(self, addr, size):
        for i in range(size):
            self._set(addr + i, 1, VBITS_DEF)

    def set_vbyte(self, addr, v):
        a, _ = self._get(addr)
        self._set(addr, a, v & 0xFF)

    def store_vbits(self, addr, size, vbits):
        for i in range(size):
            self.set_vbyte(addr + i, (vbits >> (8 * i)) & 0xFF)

    def load_vbits(self, addr, size):
        v = 0
        for i in range(size):
            v |= self._get(addr + i)[1] << (8 * i)
        return v

    def get_abit(self, addr):
        return self._get(addr)[0]

    def get_vbyte(self, addr):
        return self._get(addr)[1]

    def check_addressable(self, addr, size):
        for i in range(size):
            if self._get(addr + i)[0] == 0:
                return addr + i
        return None

    def first_undefined(self, addr, size):
        for i in range(size):
            if self._get(addr + i)[1] != 0:
                return addr + i
        return None

    def copy_range(self, src, dst, size):
        snap = [self._get(src + i) for i in range(size)]
        for i, (a, v) in enumerate(snap):
            self._set(dst + i, a, v)


def offsets():
    """Offsets biased toward page edges, where the paged code branches."""
    edges = [p * PAGE_SIZE + d for p in range(NPAGES) for d in (-2, -1, 0, 1, 2)]
    edges = [e for e in edges if 0 <= e < SPAN]
    return st.one_of(
        st.sampled_from(edges), st.integers(min_value=0, max_value=SPAN - 1)
    )


def sizes():
    """Sizes up to 2.5 pages: sub-page, whole-page, and crossing ranges."""
    return st.one_of(
        st.sampled_from([1, 2, 4, 8, PAGE_SIZE - 1, PAGE_SIZE, PAGE_SIZE + 1,
                         2 * PAGE_SIZE]),
        st.integers(min_value=1, max_value=2 * PAGE_SIZE + PAGE_SIZE // 2),
    )


def operations():
    rng = st.tuples(offsets(), sizes())
    return st.one_of(
        st.tuples(st.just("noaccess"), rng),
        st.tuples(st.just("undefined"), rng),
        st.tuples(st.just("defined"), rng),
        st.tuples(st.just("store"), st.tuples(
            offsets(), st.sampled_from([1, 2, 4]),
            st.integers(min_value=0, max_value=0xFFFFFFFF))),
        st.tuples(st.just("setv"), st.tuples(
            offsets(), st.integers(min_value=0, max_value=0xFF))),
        st.tuples(st.just("copy"), st.tuples(offsets(), offsets(), sizes())),
    )


def apply(model, op, arg):
    if op == "noaccess":
        model.make_noaccess(BASE + arg[0], min(arg[1], SPAN - arg[0]))
    elif op == "undefined":
        model.make_undefined(BASE + arg[0], min(arg[1], SPAN - arg[0]))
    elif op == "defined":
        model.make_defined(BASE + arg[0], min(arg[1], SPAN - arg[0]))
    elif op == "store":
        off, size, vbits = arg
        off = min(off, SPAN - size)
        model.store_vbits(BASE + off, size, vbits & ((1 << (8 * size)) - 1))
    elif op == "setv":
        model.set_vbyte(BASE + arg[0], arg[1])
    else:  # copy
        src, dst, size = arg
        size = min(size, SPAN - src, SPAN - dst)
        if size > 0:
            model.copy_range(BASE + src, BASE + dst, size)


def check_equal(sm, ref, probes):
    for off, size in probes:
        size = min(size, SPAN - off)
        addr = BASE + off
        assert sm.get_abit(addr) == ref.get_abit(addr)
        assert sm.get_vbyte(addr) == ref.get_vbyte(addr)
        assert sm.check_addressable(addr, size) == ref.check_addressable(addr, size)
        assert sm.first_undefined(addr, size) == ref.first_undefined(addr, size)
        lsz = min(size, 8)
        assert sm.load_vbits(addr, lsz) == ref.load_vbits(addr, lsz)


class TestShadowEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        default=st.sampled_from(["noaccess", "defined"]),
        ops=st.lists(operations(), min_size=1, max_size=24),
        probes=st.lists(st.tuples(offsets(), sizes()), min_size=4, max_size=10),
    )
    def test_random_sequences_match_reference(self, default, ops, probes):
        sm = ShadowMemory(default)
        ref = RefShadow(default)
        for op, arg in ops:
            apply(sm, op, arg)
            apply(ref, op, arg)
        check_equal(sm, ref, probes)

    @settings(max_examples=60, deadline=None)
    @given(
        off=st.integers(min_value=PAGE_SIZE - 8, max_value=PAGE_SIZE + 8),
        size=st.sampled_from([1, 2, 4]),
        vbits=st.integers(min_value=0, max_value=0xFFFFFFFF),
        marker=st.sampled_from(["noaccess", "undefined", "defined"]),
    )
    def test_cow_at_page_boundary(self, off, size, vbits, marker):
        """A store that privatizes a distinguished page right at a page
        boundary must match the reference, on both sides of the edge."""
        sm, ref = ShadowMemory(), RefShadow()
        for m in (sm, ref):
            getattr(m, f"make_{marker}")(BASE, 2 * PAGE_SIZE)
        off = min(off, 2 * PAGE_SIZE - size)
        vbits &= (1 << (8 * size)) - 1
        sm.store_vbits(BASE + off, size, vbits)
        ref.store_vbits(BASE + off, size, vbits)
        check_equal(sm, ref, [(0, 2 * PAGE_SIZE)])

    def test_copy_overlapping_forward_and_back(self):
        sm, ref = ShadowMemory(), RefShadow()
        for m in (sm, ref):
            m.make_defined(BASE, PAGE_SIZE)
            m.make_undefined(BASE + 100, 50)
            m.copy_range(BASE + 80, BASE + 90, 100)  # forward overlap
            m.copy_range(BASE + 95, BASE + 60, 100)  # backward overlap
        check_equal(sm, ref, [(0, PAGE_SIZE)])


class TestFastMapInvariants:
    def test_private_pages_enter_both_maps_with_identity(self):
        sm = ShadowMemory()
        sm.make_defined(BASE, PAGE_SIZE)          # distinguished
        sm.store_vbits(BASE + 8, 2, 0x0101)       # privatizes
        pn = BASE >> 12
        pair = sm._pages[pn]
        assert isinstance(pair, tuple)
        assert sm.fast_rd_get(pn) is pair
        assert sm.fast_wr_get(pn) is pair
        # In-place mutation must be visible through the map, no refresh.
        sm.make_noaccess(BASE + 16, 4)
        assert sm.fast_rd_get(pn) is pair
        assert pair[0][16] == 0

    def test_markers_only_in_read_map(self):
        sm = ShadowMemory()
        sm.make_defined(BASE, PAGE_SIZE)
        sm.make_undefined(BASE + PAGE_SIZE, PAGE_SIZE)
        sm.make_noaccess(BASE + 2 * PAGE_SIZE, PAGE_SIZE)
        pn = BASE >> 12
        assert sm.fast_rd_get(pn) is shadow_mod._PAIR_DEF
        assert sm.fast_rd_get(pn + 1) is shadow_mod._PAIR_UNDEF
        assert sm.fast_rd_get(pn + 2) is None
        for i in range(3):
            assert sm.fast_wr_get(pn + i) is None

    def test_marker_transition_evicts_stale_entries(self):
        sm = ShadowMemory()
        sm.make_defined(BASE, PAGE_SIZE)
        sm.store_vbits(BASE, 1, 1)                # private, in both maps
        sm.make_noaccess(BASE, PAGE_SIZE)         # back to a marker
        pn = BASE >> 12
        assert sm.fast_rd_get(pn) is None
        assert sm.fast_wr_get(pn) is None

    def test_shared_pairs_are_immutable(self):
        for pair in (shadow_mod._PAIR_DEF, shadow_mod._PAIR_UNDEF):
            assert isinstance(pair[0], bytes) and isinstance(pair[1], bytes)
            with pytest.raises(TypeError):
                pair[1][0] = 1  # type: ignore[index]


class TestCodegenTableSync:
    def test_pygen_tables_match_instrumenter_helpers(self):
        from repro.backend import isel
        from repro.tools.memcheck import instrument

        assert isel.MC_LOADV_SIZES == {
            instrument.LOADV[s]: s for s in (1, 2, 4)
        }
        assert isel.MC_STOREV_SIZES == {
            instrument.STOREV[s]: s for s in (1, 2, 4)
        }
        expected = (
            set(instrument.LOADV.values())
            | set(instrument.STOREV.values())
            | set(instrument.VALUE_CHECK.values())
        )
        assert isel.MC_NO_STATE_WRITE == frozenset(expected)
