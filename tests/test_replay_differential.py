"""Cross-tier replay oracle: a run recorded under one codegen tier must
replay bit-exactly under every other tier.

The event log captures only architected decisions, so the recording made
under the closure tier is an executable oracle for the pygen, auto and
perf engines: same RunOutcome, same (signal, pc, addr, access) fault
quadruple, same guest_insns, zero divergences.  This subsumes the older
differential suites — instead of comparing two live runs' final states,
every scheduler pick, syscall result and signal delivery is verified at
the moment it is replayed.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings

from repro import Options, assemble, run_tool
from repro.core.replay import ReplayDivergence

from .helpers import asm_image, programs

_QUICK = os.environ.get("REPRO_TEST_QUICK") == "1"
N_EXAMPLES = 25 if _QUICK else 100

#: The replay tiers every recording is verified under.
REPLAY_MODES = {
    "closures": {"codegen": "closures"},
    "pygen": {"codegen": "pygen"},
    "auto": {"codegen": "auto", "jit_threshold": 2},
    "perf": {"codegen": "closures", "perf": True},
    "traces": {"codegen": "traces", "trace_threshold": 2},
}

MAX_BLOCKS = 200_000


def _fingerprint(res):
    o = res.outcome
    fault = None
    if o.fault_info is not None:
        fi = o.fault_info
        fault = (fi.sig, fi.addr, fi.access, fi.pc)
    return (
        o.exit_code,
        o.fatal_signal,
        o.stopped_reason,
        o.guest_insns,
        o.blocks_executed,
        fault,
        res.stdout,
        res.stderr,
    )


def _record(img, path, **opt_kw):
    opts = Options(log_target="capture", record=path, codegen="closures",
                   **opt_kw)
    return run_tool("none", img, options=opts, max_blocks=MAX_BLOCKS)


def _replay(img, path, mode, **opt_kw):
    opts = Options(log_target="capture", replay=path,
                   **{**REPLAY_MODES[mode], **opt_kw})
    return run_tool("none", img, options=opts, max_blocks=MAX_BLOCKS)


def _assert_replays_everywhere(img, **opt_kw):
    """Record under closures; replay under every tier; compare."""
    path = tempfile.mktemp(suffix=".rrlog")
    try:
        rec = _record(img, path, **opt_kw)
        want = _fingerprint(rec)
        # Replay must consume the whole log: divergence raises, and the
        # final EV_EXIT event cross-checks outcome counters in-engine.
        for mode in REPLAY_MODES:
            rep = _replay(img, path, mode,
                          **{k: v for k, v in opt_kw.items()
                             if k not in ("inject", "checkpoint_every")})
            assert _fingerprint(rep) == want, mode
            stats = rep.stats()["replay"]
            assert stats["divergences"] == 0, mode
            assert stats["events_consumed"] == stats["log_events"], mode
        return rec
    finally:
        if os.path.exists(path):
            os.unlink(path)


# ---------------------------------------------------------------------------
# randomized workloads
# ---------------------------------------------------------------------------


class TestRandomPrograms:
    @given(src=programs())
    @settings(max_examples=N_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    def test_random_program_replays_in_every_tier(self, src):
        _assert_replays_everywhere(assemble(src, filename="rand"))


# ---------------------------------------------------------------------------
# faulting programs: the (signal, addr, access, pc) quadruple is the
# contract — replay must reproduce the exact faulting instruction.
# ---------------------------------------------------------------------------

_FAULT_PROGRAMS = {
    "bad-read": """
        .text
main:   movi r1, 5
floop:  dec  r1
        jnz  floop
        movi r2, 0x9fff0000
        ld   r3, [r2]
        ret
""",
    "bad-write": """
        .text
main:   movi r1, 3
        movi r2, 0x9fff1000
        st   [r2], r1
        ret
""",
    "bad-exec": """
        .text
main:   movi r2, 0x9fff2000
        jmpr r2
        ret
""",
    "div-zero": """
        .text
main:   movi r1, 10
        movi r2, 0
        divu r1, r2
        ret
""",
    "mid-loop-fault": """
        .text
main:   movi r1, 0
        movi r2, 64
loop:   add  r1, r2
        dec  r2
        cmp  r2, 30
        jnz  loop
        movi r3, 0x9fff3000
        ldb  r0, [r3]
        ret
""",
}


class TestFaultQuadruple:
    @pytest.mark.parametrize("name", sorted(_FAULT_PROGRAMS))
    def test_fault_replays_exactly(self, name):
        img = asm_image(_FAULT_PROGRAMS[name])
        rec = _assert_replays_everywhere(img)
        assert rec.outcome.fatal_signal is not None, name

    def test_unmapped_jump_faults_identically(self):
        # Jump into an address that was mapped, then unmapped: the
        # translate-time fault path (exec access) must replay too.
        src = """
        .text
main:   movi r0, 7           ; mmap(0, 4096, rwx)
        movi r1, 0
        movi r2, 4096
        movi r3, 7
        syscall
        mov  r6, r0
        movi r1, 0xc3c3c3c3  ; scribble something undecodable
        st   [r6], r1
        movi r0, 8           ; munmap it again
        mov  r1, r6
        movi r2, 4096
        syscall
        jmpr r6              ; exec of unmapped page
        ret
"""
        rec = _assert_replays_everywhere(asm_image(src))
        fi = rec.outcome.fault_info
        assert fi is not None and fi.access == "exec"


# ---------------------------------------------------------------------------
# threads + signals (the scheduler-decision and arrival-point events)
# ---------------------------------------------------------------------------

_MULTI_SIGNAL_SRC = """
        .text
main:   movi  r0, 11          ; sigaction(SIGALRM, handler)
        movi  r1, 14
        movi  r2, handler
        syscall
        movi  r0, 13          ; alarm(150)
        movi  r1, 150
        syscall
        movi  r0, 14          ; thread_create(worker, 0, 9)
        movi  r1, worker
        movi  r2, 0
        movi  r3, 9
        syscall
        mov   r6, r0
        movi  r2, 0
        movi  r3, 800
mloop:  add   r2, r3
        dec   r3
        jnz   mloop
        mov   r1, r6
        movi  r0, 16          ; join
        syscall
        add   r0, r2
        ld    r1, [hits]
        add   r0, r1
        andi  r0, 255
        ret
worker: ld    r1, [sp+4]
        movi  r2, 0
wl:     add   r2, r1
        movi  r0, 17          ; yield inside the worker loop
        syscall
        dec   r1
        jnz   wl
        mov   r1, r2
        movi  r0, 15          ; thread_exit(sum)
        syscall
handler:
        ld    r1, [hits]
        inc   r1
        st    [hits], r1
        movi  r0, 13          ; re-arm alarm(200)
        movi  r1, 200
        syscall
        ret
.data
hits:   .word 0
"""

_KILL_SRC = """
        .text
main:   movi r0, 18           ; getpid
        syscall
        movi r1, 0
        movi r2, 40
kl:     add  r1, r2
        dec  r2
        jnz  kl
        movi r0, 12           ; kill(self, SIGTERM=15): default-fatal
        movi r1, 0
        movi r2, 15
        syscall
        ret
"""


class TestThreadsAndSignals:
    def test_multi_signal_multi_thread_replays(self):
        img = asm_image(_MULTI_SIGNAL_SRC)
        rec = _assert_replays_everywhere(img, thread_timeslice=300)
        events = rec.core.scheduler.rr.log.events
        from repro.core.replay import EV_SCHED, EV_SIGNAL

        assert sum(1 for e in events if e.kind == EV_SIGNAL) >= 2
        assert sum(1 for e in events if e.kind == EV_SCHED) >= 2
        assert rec.outcome.fatal_signal is None

    def test_self_kill_replays(self):
        rec = _assert_replays_everywhere(asm_image(_KILL_SRC))
        assert rec.outcome.fatal_signal == 15


# ---------------------------------------------------------------------------
# fault-injection plans: recorded dispatch-level events replay across
# tiers — a capability the live injector alone cannot provide, because
# its dispatch-step stream is tier-dependent.
# ---------------------------------------------------------------------------

_INJECT_TARGET_SRC = """
        .text
main:   movi r6, 0
        movi r7, 6
mloop:  movi r0, 7            ; mmap (mmap-enomem opportunity)
        movi r1, 0
        movi r2, 4096
        movi r3, 6
        syscall
        test r0, r0
        js   mf
        inc  r6
mf:     movi r0, 3            ; write (eintr opportunity)
        movi r1, 1
        movi r2, msg
        movi r3, 2
        syscall
        dec  r7
        jnz  mloop
        mov  r0, r6
        andi r0, 255
        ret
.data
msg:    .ascii "ok"
"""

_PLANS = [
    "mmap-enomem@2,seed=3",
    "eintr:0.4,seed=7",
    "smc-flush:0.02,evict:0.02,seed=5",
    "segv@25,seed=9",
    "isel@2,seed=4",
    "mmap-enomem@1,eintr:0.2,smc-flush:0.01,evict:0.01,seed=13",
]


class TestInjectionReplay:
    @pytest.mark.parametrize("plan", _PLANS)
    def test_injected_run_replays_in_every_tier(self, plan):
        img = asm_image(_INJECT_TARGET_SRC)
        _assert_replays_everywhere(img, inject=plan)


# ---------------------------------------------------------------------------
# checkpoints and restore
# ---------------------------------------------------------------------------


class TestCheckpointRestore:
    def test_checkpoints_verify_across_tiers(self, tmp_path):
        img = asm_image(_MULTI_SIGNAL_SRC)
        path = str(tmp_path / "ckpt.rrlog")
        rec = _record(img, path, checkpoint_every=500, thread_timeslice=300)
        assert rec.stats()["replay"]["checkpoints"] > 0
        for mode in ("pygen", "perf"):
            rep = _replay(img, path, mode, thread_timeslice=300)
            stats = rep.stats()["replay"]
            assert stats["checkpoints_verified"] == \
                rec.stats()["replay"]["checkpoints"]
            assert _fingerprint(rep) == _fingerprint(rec)

    def test_restore_continues_to_identical_outcome(self, tmp_path):
        img = asm_image(_MULTI_SIGNAL_SRC)
        path = str(tmp_path / "ckpt.rrlog")
        rec = _record(img, path, checkpoint_every=400, thread_timeslice=300)
        res = run_tool(
            "none", img,
            options=Options(log_target="capture", restore=path,
                            thread_timeslice=300),
            max_blocks=MAX_BLOCKS,
        )
        assert _fingerprint(res) == _fingerprint(rec)

    def test_record_from_restore_is_replayable(self, tmp_path):
        img = asm_image(_MULTI_SIGNAL_SRC)
        first = str(tmp_path / "first.rrlog")
        second = str(tmp_path / "second.rrlog")
        rec = _record(img, first, checkpoint_every=400, thread_timeslice=300)
        cont = run_tool(
            "none", img,
            options=Options(log_target="capture", restore=first,
                            record=second, thread_timeslice=300),
            max_blocks=MAX_BLOCKS,
        )
        assert _fingerprint(cont) == _fingerprint(rec)
        # The continuation's own log replays (restore from its bootstrap
        # checkpoint, then verify the recorded tail) — under another tier.
        rep = run_tool(
            "none", img,
            options=Options(log_target="capture", replay=second,
                            restore=second, codegen="pygen",
                            thread_timeslice=300),
            max_blocks=MAX_BLOCKS,
        )
        assert _fingerprint(rep) == _fingerprint(rec)
        assert rep.stats()["replay"]["divergences"] == 0

    def test_restore_without_checkpoints_is_rejected(self, tmp_path):
        from repro.core.replay import ReplayFormatError

        img = asm_image("""
        .text
main:   movi r0, 1
        ret
""")
        path = str(tmp_path / "plain.rrlog")
        _record(img, path)
        with pytest.raises(ReplayFormatError, match="no checkpoints"):
            run_tool("none", img,
                     options=Options(log_target="capture", restore=path))


# ---------------------------------------------------------------------------
# divergence is loud
# ---------------------------------------------------------------------------


class TestDivergenceDetection:
    def test_wrong_program_diverges_with_location(self, tmp_path):
        img = asm_image(_INJECT_TARGET_SRC)
        path = str(tmp_path / "run.rrlog")
        _record(img, path)
        other = asm_image("""
        .text
main:   movi r1, 3
xl:     dec  r1
        jnz  xl
        movi r0, 0
        ret
""")
        with pytest.raises(ReplayDivergence) as exc_info:
            _replay(other, path, "closures")
        err = exc_info.value
        assert err.index >= 0
        assert "event #" in str(err)
        assert "pc=" in str(err)

    def test_tampered_event_diverges(self, tmp_path):
        from repro.core.replay import EV_SYSCALL, Event, EventLog

        img = asm_image(_INJECT_TARGET_SRC)
        path = str(tmp_path / "run.rrlog")
        _record(img, path)
        log = EventLog.load(path)
        # Corrupt the first syscall result, re-sign the log (valid hash,
        # wrong content): replay must catch the divergence itself.
        for i, ev in enumerate(log.events):
            if ev.kind == EV_SYSCALL:
                args = (ev.args[0], ev.args[1], ev.args[2],
                        (ev.args[3] + 1) & 0xFFFFFFFF)
                log.events[i] = Event(ev.kind, ev.tid, ev.insns, args,
                                      ev.blob)
                break
        log.save(path)
        with pytest.raises(ReplayDivergence):
            _replay(img, path, "closures")
