"""The stable embedding facade (:mod:`repro.api`).

The contract: ``repro.api`` is the one public entry surface — ``run``,
``run_fleet``, ``replay``, ``open_cache`` — the CLI and supervisor are
thin callers of it, the old deep imports
(``repro.core.supervisor.run_job`` / ``replay_bundle``) still work but
warn, and ``Options`` validates at construction, not first use.
"""

from __future__ import annotations

import json
import os
import re
import warnings

import pytest

import repro
from repro import api
from repro.core.errors import ExitCode

from .helpers import asm_image, vg

SRC = """
        .text
main:   movi r6, 41
        inc  r6
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
"""

LOOP_FILE_SRC = """\
main:
        movi r0, 300
loop:
        sub  r0, 1
        jnz  loop
        movi r0, 7
        ret
"""


class TestRun:
    def test_run_matches_run_tool(self):
        img = asm_image(SRC)
        direct = vg(SRC, "memcheck")
        job = api.run(img, "memcheck",
                      repro.Options(log_target="capture"))
        assert job.exit_code == direct.exit_code == 0
        assert job.stdout == direct.stdout == "42\n"
        assert job.log == direct.log

    def test_run_native_baseline(self):
        job = api.run(asm_image(SRC))
        assert job.exit_code == 0 and job.stdout == "42\n"

    def test_run_classifies_bad_tool(self):
        job = api.run(asm_image(SRC), "no-such-tool")
        assert job.exit_code == int(ExitCode.USAGE)
        assert job.error is not None

    def test_run_classifies_unreadable_program(self, tmp_path):
        job = api.run(str(tmp_path / "missing.s"), "memcheck")
        assert job.exit_code == int(ExitCode.USAGE)
        assert job.error is not None

    def test_run_from_path(self, tmp_path):
        path = tmp_path / "p.s"
        path.write_text(LOOP_FILE_SRC)
        job = api.run(str(path), "none")
        assert job.exit_code == 7


class TestDeprecatedDeepImports:
    def test_run_job_shim_warns_and_is_identical(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.core.supervisor import run_job as deep_run_job
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert deep_run_job is api.run
        img = asm_image(SRC)
        a = deep_run_job(img, "memcheck",
                         repro.Options(log_target="capture"))
        b = api.run(img, "memcheck", repro.Options(log_target="capture"))
        assert (a.exit_code, a.stdout, a.stderr, a.log) \
            == (b.exit_code, b.stdout, b.stderr, b.log)

    def test_replay_bundle_shim_warns_and_is_identical(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.core.supervisor import replay_bundle as deep
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert deep is api.replay_bundle

    def test_unknown_attribute_still_raises(self):
        import repro.core.supervisor as sup

        with pytest.raises(AttributeError):
            sup.definitely_not_a_thing

    def test_package_aliases_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.run_job is api.run
            assert repro.replay_bundle is api.replay_bundle
            assert repro.run is api.run
            assert repro.run_fleet is api.run_fleet

    def test_no_new_deep_imports_in_repo(self):
        """Lint: nothing in-repo (outside the shim itself and this
        test) may import the deprecated deep names."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        allow = {
            os.path.join("src", "repro", "core", "supervisor.py"),
            os.path.join("tests", "test_api_facade.py"),
        }
        deep = re.compile(
            r"^\s*from\s+(?:repro\.core\.supervisor|\.core\.supervisor|"
            r"\.supervisor)\s+import\s+(?:\([^)]*\)|[^\n]*)",
            re.M | re.S,
        )
        names = re.compile(r"\b(run_job|replay_bundle)\b")
        offenders = []
        for top in ("src", "tests", "benchmarks"):
            for dirpath, _dirs, files in os.walk(os.path.join(root, top)):
                for fname in files:
                    if not fname.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, fname)
                    rel = os.path.relpath(path, root)
                    if rel in allow:
                        continue
                    with open(path) as f:
                        text = f.read()
                    for m in deep.finditer(text):
                        if names.search(m.group(0)):
                            offenders.append(rel)
        assert not offenders, (
            f"deprecated deep imports of run_job/replay_bundle in "
            f"{offenders}; import from repro.api instead"
        )


class TestOptions:
    def test_keyword_constructor_validates(self):
        with pytest.raises(repro.BadOption):
            repro.Options(codegen="llvm")
        with pytest.raises(repro.BadOption):
            repro.Options(smc_check="sometimes")
        with pytest.raises(repro.BadOption):
            repro.Options(jit_threshold=0)
        with pytest.raises(repro.BadOption):
            repro.Options(cache_max_mb=0)
        repro.Options(codegen="pygen", cache_max_mb=1)  # valid

    def test_from_cli_args(self):
        opts = repro.Options.from_cli_args(
            ["--codegen=pygen", "--cache-dir=/tmp/cc",
             "--cache-max-mb=32", "--taint-addr=no"]
        )
        assert opts.codegen == "pygen"
        assert opts.cache_dir == "/tmp/cc"
        assert opts.cache_max_mb == 32
        assert opts.tool_options == ["--taint-addr=no"]

    def test_from_cli_args_rejects_non_options(self):
        with pytest.raises(repro.BadOption):
            repro.Options.from_cli_args(["prog.s"])

    def test_cache_flags(self):
        o = repro.Options()
        assert o.set("--cache-dir=/tmp/x") and o.cache_dir == "/tmp/x"
        assert o.set("--cache-max-mb=8") and o.cache_max_mb == 8
        with pytest.raises(repro.BadOption):
            o.set("--cache-max-mb=0")
        with pytest.raises(repro.BadOption):
            o.set("--cache-dir=")

    def test_cache_dir_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert repro.Options().cache_dir == str(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert repro.Options().cache_dir is None


class TestRunFleet:
    def test_string_jobs_promoted(self, tmp_path):
        program = str(tmp_path / "p.s")
        with open(program, "w") as f:
            f.write(LOOP_FILE_SRC)
        report = api.run_fleet([program, program], tool="none",
                               workers=2, record_bundles=False)
        assert isinstance(report, api.FleetReport)
        assert report.ok
        assert report.summary["succeeded"] == 2
        # Dict-style access stays available for raw-report consumers.
        assert report["summary"] is report.summary
        assert "jobs" in report and len(report.jobs) == 2
        json.dumps(report.raw)  # still plain JSON

    def test_fleet_report_cache_property(self, tmp_path):
        program = str(tmp_path / "p.s")
        with open(program, "w") as f:
            f.write(LOOP_FILE_SRC)
        report = api.run_fleet([program], tool="none", workers=1,
                               record_bundles=False)
        assert report.cache is None  # no --stats=json: no cache section


class TestReplayDispatch:
    class _KillInjector:
        """Duck-typed FleetInjector: SIGKILL every attempt at tick 4."""

        spec = "fixed:kill@4"

        def directive(self, job_id, attempt):
            return ("kill", 4)

        def corrupts(self, job_id, attempt):
            return False

        def stats(self):
            return {}

    def _terminal_failure_bundle(self, tmp_path):
        program = str(tmp_path / "p.s")
        with open(program, "w") as f:
            f.write(LOOP_FILE_SRC)
        bundles = str(tmp_path / "bundles")
        report = api.run_fleet(
            [api.JobSpec(job_id=0, program=program, tool="none",
                         flags=["--dispatch-quantum=50"])],
            workers=1,
            policy=api.RetryPolicy(max_retries=0, seed=3),
            inject=self._KillInjector(),
            bundle_dir=bundles,
        )
        job = report.jobs[0]
        assert job["terminal"] == "terminal-failure"
        assert job["bundle_status"] == "ok"
        return os.path.join(bundles, job["bundle"])

    def test_replay_accepts_manifest_and_log(self, tmp_path):
        manifest = self._terminal_failure_bundle(tmp_path)
        via_manifest = api.replay(manifest)
        assert via_manifest["status"] == "replayed"
        log = manifest[: -len(".bundle.json")] + ".rrlog"
        via_log = api.replay(log)
        assert via_log == via_manifest

    def test_replay_missing_manifest(self, tmp_path):
        orphan = tmp_path / "orphan.rrlog"
        orphan.write_bytes(b"whatever")
        out = api.replay(str(orphan))
        assert out["status"] == "error"
        assert "manifest" in out["error"]


class TestOpenCache:
    def test_open_cache_roundtrip(self, tmp_path):
        cache = api.open_cache(str(tmp_path / "cc"), max_mb=8)
        raw = b"\x42" * 32

        def fetch(start, length):
            return raw[start:start + length]

        assert cache.store_translation(
            b"\x07" * 32, 0x100, fetch,
            code=b"HOSTCODE", ranges=((0, 32),), irsb=None, stats=None,
        )
        again = api.open_cache(str(tmp_path / "cc"), max_mb=8)
        hit = again.lookup_translation(b"\x07" * 32, 0x100, fetch)
        assert hit is not None and hit["code"] == b"HOSTCODE"
        assert os.path.exists(tmp_path / "cc" / "VERSION")

    def test_exported_from_package(self):
        assert repro.open_cache is api.open_cache
        for name in ("run", "run_fleet", "replay", "open_cache",
                     "FleetReport"):
            assert name in repro.__all__


class TestCliIsThin:
    def test_cli_single_run(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        program = str(tmp_path / "p.s")
        with open(program, "w") as f:
            f.write(LOOP_FILE_SRC)
        code = cli_main([f"--tool=none", program])
        assert code == 7

    def test_cli_fleet_cache_flags(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        program = str(tmp_path / "p.s")
        with open(program, "w") as f:
            f.write(LOOP_FILE_SRC)
        cache_dir = str(tmp_path / "cc")
        code = cli_main([
            "fleet", "--workers=2", "--repeat=2", "--tool=none",
            f"--cache-dir={cache_dir}", "--cache-max-mb=16",
            "--bundles=no", "--stats=json", program,
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fleet"]["cache_dir"] == cache_dir
        assert report["stats"]["cache"]["stores"] > 0

    def test_cli_rejects_bad_cache_max_mb(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["fleet", "--cache-max-mb=0", "x.s"]) == 2
