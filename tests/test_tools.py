"""Tests for the ICnt tools, Cachegrind (and the cache simulator), Massif,
TaintCheck, and Tracegrind."""

import pytest

from repro import Options
from repro.core.clientreq import clreq_asm
from repro.core.valgrind import Valgrind
from repro.tools.cachegrind import Cachegrind
from repro.tools.cachesim import AccessCounts, Cache, CacheConfig, CacheHierarchy
from repro.tools.massif import Massif
from repro.tools.taintcheck import TC_IS_TAINTED, TC_TAINT, TaintCheck
from repro.tools.tracegrind import Tracegrind

from helpers import asm_image, native, vg

COUNT_LOOP = """
        .text
main:   movi r0, 1000
loop:   dec r0
        jnz loop
        movi r0, 0
        ret
"""


class TestICnt:
    def test_both_counters_agree_with_native(self):
        img = asm_image(COUNT_LOOP)
        nat = native(img)
        inline = vg(img, "icnt-inline")
        call = vg(img, "icnt-call")
        assert inline.tool.count == nat.guest_insns
        assert call.tool.count == nat.guest_insns
        assert f"executed {nat.guest_insns}" in inline.log

    def test_counts_across_tool_features(self):
        # Counting must survive libc calls, syscalls and side exits.
        src = """
        .text
main:   pushi 16
        call malloc
        addi sp, 4
        push r0
        call free
        addi sp, 4
        movi r0, 0
        ret
"""
        img = asm_image(src)
        nat = native(img)
        res = vg(img, "icnt-inline")
        assert res.tool.count == nat.guest_insns


class TestCacheSim:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size=100, assoc=2, line_size=32)

    def test_lru_within_set(self):
        c = Cache(CacheConfig(size=2 * 32, assoc=2, line_size=32))
        assert c.access_line(0) and c.access_line(1)  # cold misses
        assert not c.access_line(0)                   # hit
        assert c.access_line(2)                       # evicts LRU (line 1)
        assert not c.access_line(0)                   # 0 still resident
        assert c.access_line(1)                       # 1 was evicted

    def test_straddling_access_touches_two_lines(self):
        h = CacheHierarchy()
        counts = AccessCounts()
        h.data_read(30, 4, counts)  # crosses the 32-byte line boundary
        assert counts.Dr == 1 and counts.D1mr == 2

    def test_l2_catches_l1_misses(self):
        small_l1 = CacheConfig(size=64, assoc=1, line_size=32)
        big_l2 = CacheConfig(size=4096, assoc=4, line_size=32)
        h = CacheHierarchy(small_l1, small_l1, big_l2)
        counts = AccessCounts()
        for _ in range(3):
            for addr in (0, 64, 128):  # all map to L1 set 0: thrash L1
                h.data_read(addr, 4, counts)
        assert counts.D1mr == 9       # every access misses D1
        assert counts.DLmr == 3       # but only the cold misses reach memory


class TestCachegrind:
    def test_counts_and_locality(self):
        src = """
        .text
main:   movi r0, 0
        movi r1, 0
seq:    ld   r2, [buf+r1*4]   ; sequential: mostly hits
        add  r0, r2
        inc  r1
        cmpi r1, 512
        jl   seq
        movi r0, 0
        ret
        .data
buf:    .space 2048
"""
        res = vg(src, "cachegrind")
        tool = res.tool
        lines = tool.summary_lines()
        t = tool.totals
        assert t.Ir > 2500
        # 512 loop loads + crt0's argc/argv loads + ret's pop.
        assert t.Dr == 512 + 3
        # Sequential access: one miss per 32-byte line (8 words), plus a
        # couple of cold stack-line misses.
        assert 512 // 8 <= t.D1mr <= 512 // 8 + 4
        assert any("D1  misses" in l for l in lines)

    def test_per_function_attribution(self):
        src = """
        .text
main:   call hotfn
        movi r0, 0
        ret
hotfn:  movi r1, 200
h1:     dec r1
        jnz h1
        ret
"""
        res = vg(src, "cachegrind")
        names = [name for name, _ in res.tool.per_function()]
        assert "hotfn" in names
        top = res.tool.per_function()[0]
        assert top[0] in ("hotfn", "h1")  # the loop dominates Ir


class TestMassif:
    def test_peak_and_profile(self):
        src = """
        .text
main:   pushi 1000
        call malloc
        addi sp, 4
        mov  r6, r0
        pushi 2000
        call malloc
        addi sp, 4
        mov  r7, r0
        push r6
        call free
        addi sp, 4
        pushi 500
        call malloc
        addi sp, 4
        push r0
        call free
        addi sp, 4
        push r7
        call free
        addi sp, 4
        movi r0, 0
        ret
"""
        res = vg(src, "massif")
        tool = res.tool
        assert tool.peak_bytes == 3000
        assert tool.heap_bytes == 0  # everything freed
        assert tool.peak_snapshot is not None
        assert sum(size for _, size in tool.peak_snapshot.detail) == 3000
        assert "peak heap usage: 3000 bytes" in res.log

    def test_realloc_tracking(self):
        src = """
        .text
main:   pushi 100
        call malloc
        addi sp, 4
        pushi 300
        push r0
        call realloc
        addi sp, 8
        push r0
        call free
        addi sp, 4
        movi r0, 0
        ret
"""
        res = vg(src, "massif")
        assert res.tool.peak_bytes == 300
        assert res.tool.heap_bytes == 0


class TestTaintCheck:
    def test_stdin_is_tainted_and_flows_to_jump(self):
        src = """
        .text
main:   movi r0, 2           ; read(0, buf, 4)
        movi r1, 0
        movi r2, buf
        movi r3, 4
        syscall
        ld   r1, [buf]        ; tainted
        andi r1, 3
        addi r1, target       ; tainted jump target
        jmp  r1
target: movi r0, 0
        ret
        .data
buf:    .word 0
"""
        res = vg(src, "taintcheck", stdin=b"\x00\x00\x00\x00")
        assert [e.kind for e in res.errors] == ["TaintedJump"]

    def test_untainted_jump_is_fine(self):
        src = """
        .text
main:   movi r1, target
        jmp  r1
target: movi r0, 0
        ret
"""
        res = vg(src, "taintcheck")
        assert res.errors == []

    def test_taint_clears_on_overwrite(self):
        src = f"""
        .text
main:   movi r1, buf
        movi r2, 4
        movi r0, {TC_TAINT:#x}
        clreq
        sti  [buf], 7         ; constant store untaints
        movi r1, buf
        movi r2, 4
        movi r0, {TC_IS_TAINTED:#x}
        clreq
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
buf:    .word 0
"""
        res = vg(src, "taintcheck")
        assert res.stdout.strip() == "0"

    def test_taint_propagates_through_arithmetic(self):
        src = f"""
        .text
main:   movi r1, buf
        movi r2, 4
        movi r0, {TC_TAINT:#x}
        clreq
        ld   r1, [buf]
        addi r1, 5
        mul  r1, r1
        st   [out], r1
        movi r1, out
        movi r2, 4
        movi r0, {TC_IS_TAINTED:#x}
        clreq
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
buf:    .word 0
out:    .word 0
"""
        res = vg(src, "taintcheck")
        assert res.stdout.strip() == "1"

    def test_tainted_syscall_arg_flagged(self):
        src = f"""
        .text
main:   movi r1, buf
        movi r2, 4
        movi r0, {TC_TAINT:#x}
        clreq
        ld   r1, [buf]        ; tainted value...
        movi r0, 13           ; ...used as a syscall arg (alarm(r1))
        syscall
        movi r0, 0
        ret
        .data
buf:    .word 0
"""
        res = vg(src, "taintcheck")
        assert "TaintedSyscall" in [e.kind for e in res.errors]


class TestTracegrind:
    def test_trace_matches_program_shape(self):
        src = """
        .text
main:   sti  [buf], 1
        ld   r0, [buf]
        ld   r1, [buf+4]
        movi r0, 0
        ret
        .data
buf:    .space 8
"""
        img = asm_image(src)
        res = vg(img, "tracegrind")
        events = res.tool.events
        nat = native(img)
        insns = [e for e in events if e[0] == "I"]
        loads = [e for e in events if e[0] == "L"]
        stores = [e for e in events if e[0] == "S"]
        assert len(insns) == nat.guest_insns
        data_addr = img.symbols["buf"]
        assert ("S", data_addr, 4) in stores
        assert ("L", data_addr, 4) in loads and ("L", data_addr + 4, 4) in loads
        assert "loads" in res.log

    def test_tool_is_about_100_lines(self):
        # Section 5.1: "about 100 [lines] in Valgrind".
        import inspect

        import repro.tools.tracegrind as tg

        n = len(inspect.getsource(tg).splitlines())
        assert 60 <= n <= 150


class TestTaintAddrSink:
    def test_taint_addr_option_catches_table_laundering(self):
        """Dispatch through a clean jump table with a tainted index: the
        default jump-target sink misses it (the loaded address is clean);
        --taint-addr=yes flags the tainted table access."""
        src = """
        .text
main:   movi r0, 2
        movi r1, 0
        movi r2, buf
        movi r3, 4
        syscall
        ld   r1, [buf]
        andi r1, 1
        shl  r1, 2
        ld   r1, [table+r1]   ; clean value, tainted index
        jmp  r1
t0:     movi r0, 0
        ret
        .data
table:  .word t0, t0
buf:    .word 0
"""
        img = asm_image(src)
        off = vg(img, "taintcheck", stdin=b"\x01\0\0\0")
        assert off.errors == []  # the classic false negative
        on = vg(img, "taintcheck", stdin=b"\x01\0\0\0",
                options=Options(log_target="capture",
                                tool_options=["--taint-addr=yes"]))
        assert [e.kind for e in on.errors] == ["TaintedAddr"]
