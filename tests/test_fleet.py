"""Fleet supervisor: crash isolation, watchdog, retry/backoff, tier
degradation, and replay crash bundles.

The contract under test is the supervisor's: every job ends in exactly
one classified terminal state no matter what its worker does (SIGKILL
mid-run, hang, injected JIT failure, corrupted bundle), two fleets with
the same seed produce the identical normalized report, and every intact
crash bundle replays bit-exactly to the same endpoint in the parent.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.core.errors import ExitCode
from repro.core.faultinject import BadInjectSpec, FleetInjector
from repro.core.replay import EV_EXIT, EventLog
from repro.api import (
    FleetSupervisor,
    JobResult,
    JobSpec,
    RetryPolicy,
    WatchdogConfig,
    replay_bundle,
)
from repro.api import run as run_job
from repro.core.supervisor import (
    TERMINAL_STATES,
    corrupt_bundle_log,
    merge_stats,
    normalize_report,
)
from repro.guest.program import VxImage

from .helpers import asm_image

QUICK = bool(os.environ.get("REPRO_TEST_QUICK"))

#: A compute loop long enough for many dispatch-quantum heartbeats.
LOOP_SRC = """\
main:
        movi r0, 4000
loop:
        sub  r0, 1
        jnz  loop
        movi r0, 7
        ret
"""

#: Dies of SIGSEGV (guest-caused fatal signal, exit 128+11).
CRASH_SRC = """\
main:
        ld   r0, [0x90000000]
        ret
"""

#: Never terminates: only a block budget stops it (exit 124).
SPIN_SRC = """\
main:
spin:
        jmp  spin
"""

#: Per-job flags making heartbeats frequent for every test fleet.
QUANTUM = ["--dispatch-quantum=50"]

WATCHDOG = WatchdogConfig(wall_budget=60.0, heartbeat_timeout=1.0,
                          poll_interval=0.01)


@pytest.fixture(scope="module")
def progs(tmp_path_factory):
    d = tmp_path_factory.mktemp("fleet-progs")
    out = {}
    for name, src in (("loop", LOOP_SRC), ("crash", CRASH_SRC),
                      ("spin", SPIN_SRC)):
        path = d / f"{name}.s"
        path.write_text(src)
        out[name] = str(path)
    return out


def make_jobs(program, n, *, tool="none", flags=(), max_blocks=20_000):
    return [
        JobSpec(job_id=i, program=program, tool=tool,
                flags=QUANTUM + list(flags), max_blocks=max_blocks)
        for i in range(n)
    ]


class _FixedInjector:
    """Duck-typed FleetInjector: one fixed directive for every first
    attempt, none for retries."""

    def __init__(self, kind, tick, corrupt=False, every_attempt=False):
        self.spec = f"fixed:{kind}@{tick}"
        self._kind, self._tick = kind, tick
        self._corrupt = corrupt
        self._every = every_attempt

    def directive(self, job_id, attempt):
        if attempt == 0 or self._every:
            return (self._kind, self._tick)
        return None

    def corrupts(self, job_id, attempt):
        return self._corrupt

    def stats(self):
        return {}


class TestExitCode:
    def test_values(self):
        assert ExitCode.REPLAY_EXHAUSTED == 96
        assert ExitCode.REPLAY_DIVERGENCE == 97
        assert ExitCode.BLOCK_BUDGET == 124
        assert ExitCode.DEADLOCK == 125
        assert ExitCode.SIGNAL_BASE == 128

    def test_signal_round_trip(self):
        assert ExitCode.for_signal(11) == 139
        assert ExitCode.signal_of(139) == 11
        assert ExitCode.signal_of(0) is None
        assert ExitCode.signal_of(300) is None

    def test_guest_caused(self):
        for code in (0, 7, ExitCode.BLOCK_BUDGET, ExitCode.DEADLOCK,
                     ExitCode.for_signal(11)):
            assert ExitCode.is_guest_caused(code), code
        for code in (ExitCode.REPLAY_EXHAUSTED, ExitCode.REPLAY_DIVERGENCE,
                     200, -1):
            assert not ExitCode.is_guest_caused(code), code


class TestRunJob:
    def test_tooled_run(self, progs):
        res = run_job(progs["loop"], "none")
        assert isinstance(res, JobResult)
        assert res.exit_code == 7
        assert res.error is None
        assert res.guest_insns > 4000

    def test_accepts_image(self):
        img = asm_image("main:\n    movi r0, 9\n    ret\n")
        assert run_job(img, "none").exit_code == 9
        assert isinstance(img, VxImage)

    def test_native_run(self, progs):
        res = run_job(progs["loop"], None)
        assert res.exit_code == 7

    def test_missing_program(self, tmp_path):
        res = run_job(str(tmp_path / "nope.s"), "none")
        assert res.exit_code == ExitCode.USAGE
        assert res.error is not None

    def test_unknown_tool(self, progs):
        res = run_job(progs["loop"], "no-such-tool")
        assert res.exit_code == ExitCode.USAGE
        assert "no-such-tool" in res.error

    def test_fatal_signal(self, progs):
        res = run_job(progs["crash"], "none")
        assert res.exit_code == ExitCode.for_signal(res.fatal_signal)
        assert res.error is None  # a completed (classified) guest run

    def test_block_budget(self, progs):
        res = run_job(progs["spin"], "none", max_blocks=500)
        assert res.exit_code == ExitCode.BLOCK_BUDGET
        assert res.stopped_reason == "block-budget"

    def test_on_progress_heartbeat(self, progs):
        beats = []
        from repro.core.options import Options

        opts = Options(log_target="capture", dispatch_quantum=50)
        res = run_job(progs["loop"], "none", opts, on_progress=beats.append)
        assert res.exit_code == 7
        assert len(beats) >= 10
        assert beats == sorted(beats)  # instruction counts never regress

    def test_stats_out(self, progs, tmp_path):
        from repro.core.options import Options

        out = tmp_path / "stats.json"
        opts = Options(log_target="capture", stats_out=str(out))
        res = run_job(progs["loop"], "none", opts)
        assert res.stats is not None
        payload = json.loads(out.read_text())
        assert payload["tool"] == "none"
        assert payload["exit_code"] == 7


class TestStatsOutCLI:
    def test_stats_out_flag(self, progs, tmp_path, capsys):
        out = tmp_path / "s.json"
        rc = cli_main([f"--tool=none", f"--stats-out={out}", progs["loop"]])
        assert rc == 7
        assert json.loads(out.read_text())["exit_code"] == 7
        # --stats-out alone must not print the payload to stderr
        assert '"transtab"' not in capsys.readouterr().err

    def test_stats_json_still_prints(self, progs, capsys):
        rc = cli_main(["--tool=none", "--stats=json", progs["loop"]])
        assert rc == 7
        assert '"transtab"' in capsys.readouterr().err


class TestFleetInjector:
    def test_bad_specs(self):
        for spec in ("frobnicate:0.5", "kill@0", "hang:1.5", "kill@x",
                     "seed=q"):
            with pytest.raises(BadInjectSpec):
                FleetInjector(spec)

    def test_at_fires_on_one_job(self):
        inj = FleetInjector("kill@3,seed=1")
        fired = [(j, a) for j in range(6) for a in range(3)
                 if inj.directive(j, a)]
        assert fired == [(2, 0)]

    def test_deterministic_across_instances(self):
        grid = [(j, a) for j in range(20) for a in range(3)]
        spec = "kill:0.3,hang:0.2,pygen-poison:0.1,seed=9"
        a = [FleetInjector(spec).directive(j, at) for j, at in grid]
        b = [FleetInjector(spec).directive(j, at) for j, at in grid]
        assert a == b
        assert any(d is not None for d in a)

    def test_corrupts_deterministic(self):
        spec = "corrupt:0.5,seed=4"
        a = [FleetInjector(spec).corrupts(j, 0) for j in range(40)]
        b = [FleetInjector(spec).corrupts(j, 0) for j in range(40)]
        assert a == b
        assert any(a) and not all(a)

    def test_priority_kill_first(self):
        inj = FleetInjector("kill:1.0,hang:1.0,pygen-poison:1.0")
        kind, tick = inj.directive(0, 0)
        assert kind == "kill"
        assert 1 <= tick <= 4

    def test_independent_of_order(self):
        spec = "kill:0.4,seed=2"
        a = FleetInjector(spec)
        b = FleetInjector(spec)
        forward = [a.directive(j, 0) for j in range(10)]
        backward = [b.directive(j, 0) for j in reversed(range(10))]
        assert forward == list(reversed(backward))


class TestRetryPolicy:
    def test_backoff_deterministic(self):
        p1 = RetryPolicy(seed=5)
        p2 = RetryPolicy(seed=5)
        sched = [(j, n) for j in range(8) for n in range(1, 4)]
        assert [p1.backoff(j, n) for j, n in sched] == \
               [p2.backoff(j, n) for j, n in sched]

    def test_backoff_grows(self):
        p = RetryPolicy(seed=0, backoff_base=0.05, backoff_factor=2.0)
        for job in range(5):
            assert p.backoff(job, 2) > p.backoff(job, 1)
            assert p.backoff(job, 3) > p.backoff(job, 2)

    def test_seed_changes_schedule(self):
        a = [RetryPolicy(seed=1).backoff(j, 1) for j in range(16)]
        b = [RetryPolicy(seed=2).backoff(j, 1) for j in range(16)]
        assert a != b


class TestFleetBasics:
    def test_all_succeed(self, progs, tmp_path):
        jobs = make_jobs(progs["loop"], 6, flags=["--stats=json"])
        sup = FleetSupervisor(jobs, workers=3, watchdog=WATCHDOG,
                              bundle_dir=str(tmp_path))
        report = sup.run()
        assert report["summary"]["succeeded"] == 6
        assert report["summary"]["attempts"] == 6
        for job in report["jobs"]:
            assert job["terminal"] == "succeeded"
            assert job["exit_code"] == 7
        # aggregated --stats=json: numeric leaves sum across jobs
        assert report["stats"]["dispatch"]["guest_insns"] > 6 * 4000
        # successful jobs leave no bundles behind
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".rrlog")]

    def test_guest_caused_exits_are_terminal(self, progs, tmp_path):
        jobs = [
            JobSpec(0, progs["loop"], "none", flags=list(QUANTUM)),
            JobSpec(1, progs["crash"], "none", flags=list(QUANTUM)),
            JobSpec(2, progs["spin"], "none", flags=list(QUANTUM),
                    max_blocks=500),
        ]
        sup = FleetSupervisor(jobs, workers=3, watchdog=WATCHDOG,
                              bundle_dir=str(tmp_path))
        report = sup.run()
        assert report["summary"]["succeeded"] == 3
        codes = [j["exit_code"] for j in report["jobs"]]
        assert codes == [7, int(ExitCode.for_signal(11)),
                         int(ExitCode.BLOCK_BUDGET)]
        assert report["summary"]["attempts"] == 3  # no pointless retries

    def test_native_jobs(self, progs, tmp_path):
        jobs = make_jobs(progs["loop"], 2, tool=None)
        sup = FleetSupervisor(jobs, workers=2, watchdog=WATCHDOG,
                              bundle_dir=str(tmp_path))
        report = sup.run()
        assert report["summary"]["succeeded"] == 2

    def test_bad_flags_complete_as_usage(self, progs, tmp_path):
        jobs = [JobSpec(0, progs["loop"], "none",
                        flags=["--stats=banana"])]
        report = FleetSupervisor(jobs, workers=1, watchdog=WATCHDOG,
                                 bundle_dir=str(tmp_path)).run()
        job = report["jobs"][0]
        assert job["terminal"] == "succeeded"  # classified, not retried
        assert job["exit_code"] == ExitCode.USAGE
        assert job["error"]


class TestWatchdogAndRetry:
    def test_kill_is_retried_then_succeeds(self, progs, tmp_path):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 2), workers=2, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=2, backoff_base=0.01, seed=1),
            inject=_FixedInjector("kill", 4),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()
        assert report["summary"]["retried-then-succeeded"] == 2
        assert report["summary"]["worker_deaths"] == 2
        assert report["summary"]["worker_respawns"] >= 2
        for job in report["jobs"]:
            outcomes = [a["outcome"] for a in job["attempts"]]
            assert outcomes == ["worker-died", "completed"]
            assert job["attempts"][0]["backoff"] > 0

    def test_hang_reaped_by_heartbeat_watchdog(self, progs, tmp_path):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 1), workers=1, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=1, backoff_base=0.01, seed=1),
            inject=_FixedInjector("hang", 3),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()
        job = report["jobs"][0]
        assert job["terminal"] == "retried-then-succeeded"
        assert job["attempts"][0]["outcome"] == "watchdog-hang"
        assert report["summary"]["watchdog_hang"] == 1

    def test_retries_exhausted_is_terminal_failure(self, progs, tmp_path):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 1), workers=1, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=1, backoff_base=0.01, seed=1),
            inject=_FixedInjector("kill", 4, every_attempt=True),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()
        job = report["jobs"][0]
        assert job["terminal"] == "terminal-failure"
        assert [a["outcome"] for a in job["attempts"]] == \
               ["worker-died", "worker-died"]
        assert job["bundle_status"] == "ok"
        assert job["bundle"].endswith(".bundle.json")


class TestTierDegradation:
    def test_pygen_poison_degrades_to_closures(self, progs, tmp_path):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 2, flags=["--codegen=pygen"]),
            workers=2, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=0, jit_degrade_after=1, seed=3),
            inject=_FixedInjector("pygen-poison", 3, every_attempt=True),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()
        for job in report["jobs"]:
            assert job["terminal"] == "degraded-tier-succeeded"
            assert job["degraded"] is True
            assert job["exit_code"] == 7
            assert [a["class"] for a in job["attempts"]] == ["jit", "ok"]

    def test_traces_degrade_one_tier_at_a_time(self, progs, tmp_path):
        # A trace-tier job with a poisoned pygen backend walks down the
        # ladder one rung per degradation: traces -> pygen -> closures.
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 1, flags=["--codegen=traces"]),
            workers=1, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=0, jit_degrade_after=1, seed=3),
            inject=_FixedInjector("pygen-poison", 3, every_attempt=True),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()
        job = report["jobs"][0]
        assert job["terminal"] == "degraded-tier-succeeded"
        assert job["exit_code"] == 7
        assert [a["class"] for a in job["attempts"]] == ["jit", "jit", "ok"]
        assert [a.get("degraded") for a in job["attempts"]] == \
            ["pygen", "closures", None]

    def test_jit_failures_do_not_burn_infra_retries(self, progs, tmp_path):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 1, flags=["--codegen=pygen"]),
            workers=1, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=0, jit_degrade_after=2, seed=3),
            inject=_FixedInjector("pygen-poison", 2, every_attempt=True),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()
        job = report["jobs"][0]
        # two jit failures (max_retries=0!) then a degraded success
        assert job["terminal"] == "degraded-tier-succeeded"
        assert len(job["attempts"]) == 3


class TestFleetDeterminism:
    """Satellite: same seed => identical retry schedule, backoff
    sequence and terminal classification across two whole fleet runs."""

    CHAOS = "kill:0.25,hang:0.1,corrupt:0.5,seed=11"

    def _run(self, progs, bundle_dir):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 8 if QUICK else 12),
            workers=4,
            watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=1, backoff_base=0.01, seed=11),
            inject=FleetInjector(self.CHAOS),
            bundle_dir=str(bundle_dir),
            verify_bundles=True,
        )
        return sup.run()

    def test_same_seed_same_report(self, progs, tmp_path):
        a = self._run(progs, tmp_path / "a")
        b = self._run(progs, tmp_path / "b")
        na, nb = normalize_report(a), normalize_report(b)
        assert na == nb
        # the run was actually chaotic, not trivially identical
        assert a["summary"]["worker_deaths"] + \
            a["summary"]["watchdog_hang"] > 0

    def test_backoff_sequences_identical(self, progs, tmp_path):
        a = self._run(progs, tmp_path / "c")
        b = self._run(progs, tmp_path / "d")
        backoffs_a = [[att["backoff"] for att in j["attempts"]]
                      for j in a["jobs"]]
        backoffs_b = [[att["backoff"] for att in j["attempts"]]
                      for j in b["jobs"]]
        assert backoffs_a == backoffs_b


class TestCrashBundles:
    """Satellite: a worker killed mid-run under --record yields a bundle
    that replays bit-exactly in the parent."""

    def _terminal_kill(self, progs, bundle_dir, tick=4):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 1), workers=1, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=0, seed=0),
            inject=_FixedInjector("kill", tick),
            bundle_dir=str(bundle_dir),
        )
        report = sup.run()
        return report["jobs"][0]

    def test_bundle_replays_bit_exactly(self, progs, tmp_path):
        job = self._terminal_kill(progs, tmp_path)
        assert job["terminal"] == "terminal-failure"
        assert job["bundle_status"] == "ok"
        manifest = tmp_path / job["bundle"]
        first = replay_bundle(str(manifest))
        second = replay_bundle(str(manifest))
        assert first["status"] == "replayed"
        assert first == second  # bit-exact: same endpoint, same exit
        log = EventLog.load(str(tmp_path / f"{job['bundle'][:-12]}.rrlog"))
        # the killed worker never recorded an exit event...
        assert log.events[-1].kind != EV_EXIT
        # ...and the replay consumed every recorded event
        assert first["endpoint"]["event_index"] == len(log.events)
        assert first["endpoint"]["guest_insns"] > 0

    def test_manifest_contents(self, progs, tmp_path):
        job = self._terminal_kill(progs, tmp_path)
        manifest = json.loads((tmp_path / job["bundle"]).read_text())
        assert manifest["program"] == progs["loop"]
        assert manifest["tool"] == "none"
        assert manifest["classification"] == "worker-died"
        assert manifest["log_sha256"]
        assert "--dispatch-quantum=50" in manifest["flags"]

    def test_corrupted_bundle_is_classified(self, progs, tmp_path):
        job = self._terminal_kill(progs, tmp_path)
        log_path = str(tmp_path / f"{job['bundle'][:-12]}.rrlog")
        assert corrupt_bundle_log(log_path)
        verdict = replay_bundle(str(tmp_path / job["bundle"]))
        assert verdict["status"] == "corrupt"

    def test_corrupt_in_transit_classified_by_supervisor(self, progs,
                                                         tmp_path):
        sup = FleetSupervisor(
            make_jobs(progs["loop"], 1), workers=1, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=0, seed=0),
            inject=_FixedInjector("kill", 4, corrupt=True),
            bundle_dir=str(tmp_path),
        )
        job = sup.run()["jobs"][0]
        assert job["terminal"] == "terminal-failure"
        assert job["bundle_status"] == "corrupt"

    def test_kill_before_first_flush_is_missing(self, progs, tmp_path):
        job = self._terminal_kill(progs, tmp_path, tick=1)
        assert job["terminal"] == "terminal-failure"
        assert job["bundle_status"] == "missing"


class TestMergeStats:
    def test_numeric_leaves_sum(self):
        total = {}
        merge_stats(total, {"a": 1, "b": {"c": 2.5}, "s": "x", "f": True})
        merge_stats(total, {"a": 2, "b": {"c": 0.5, "d": 1}, "s": "y"})
        assert total == {"a": 3, "b": {"c": 3.0, "d": 1}}


class TestFleetChaosMatrix:
    """Acceptance: a seeded chaos matrix across >= 100 jobs — the
    supervisor never crashes, every job lands in a classified terminal
    state, and every intact terminal-failure bundle replays."""

    N = 24 if QUICK else 100

    def test_chaos_matrix(self, progs, tmp_path):
        jobs = make_jobs(
            progs["loop"], self.N, flags=["--codegen=pygen"]
        )
        sup = FleetSupervisor(
            jobs,
            workers=6,
            watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=1, backoff_base=0.005,
                               jit_degrade_after=1, seed=5),
            inject=FleetInjector(
                "kill:0.15,hang:0.05,pygen-poison:0.15,corrupt:0.3,seed=5"
            ),
            bundle_dir=str(tmp_path),
        )
        report = sup.run()  # "never crashes": this returning is the claim
        summary = report["summary"]
        assert sum(summary[s] for s in TERMINAL_STATES) == self.N
        assert summary["worker_deaths"] + summary["watchdog_hang"] > 0
        for job in report["jobs"]:
            assert job["terminal"] in TERMINAL_STATES
            if job["terminal"] == "terminal-failure":
                assert job["bundle_status"] in ("ok", "corrupt", "missing")
                if job["bundle_status"] == "ok":
                    verdict = replay_bundle(str(tmp_path / job["bundle"]))
                    assert verdict["status"] == "replayed", job
            else:
                assert job["exit_code"] is not None
                assert ExitCode.is_guest_caused(job["exit_code"])


class TestFleetCLI:
    def test_fleet_verb(self, progs, capsys):
        rc = cli_main([
            "fleet", "--tool=none", "--workers=2", "--repeat=3",
            "--dispatch-quantum=50", progs["loop"],
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "3 jobs on 2 workers" in err
        assert "succeeded=3" in err

    def test_fleet_stats_json(self, progs, tmp_path, capsys):
        rc = cli_main([
            "fleet", "--tool=none", "--workers=2", "--repeat=2",
            "--dispatch-quantum=50", "--stats=json",
            f"--fleet-dir={tmp_path}", progs["loop"],
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["succeeded"] == 2
        assert report["stats"]["dispatch"]["guest_insns"] > 0

    def test_fleet_terminal_failure_exit_code(self, progs, tmp_path,
                                              capsys):
        rc = cli_main([
            "fleet", "--tool=none", "--workers=1", "--fleet-seed=1",
            "--fleet-inject=kill:1.0,seed=1", "--max-retries=0",
            "--dispatch-quantum=50", "--heartbeat-timeout=1.0",
            f"--fleet-dir={tmp_path}", progs["loop"],
        ])
        assert rc == 1
        assert "terminal-failure=1" in capsys.readouterr().err

    def test_fleet_bad_inject(self, capsys):
        assert cli_main(["fleet", "--fleet-inject=frob:0.5", "x.s"]) == 2

    def test_fleet_no_program(self, capsys):
        assert cli_main(["fleet", "--workers=2"]) == 2

    def test_fleet_help(self, capsys):
        assert cli_main(["fleet", "--help"]) == 0
        assert "--fleet-inject" in capsys.readouterr().out
