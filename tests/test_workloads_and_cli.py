"""Workload-suite and command-line launcher tests."""

import sys

import pytest

from repro.cli import main as cli_main
from repro.workloads.suite import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    INT_WORKLOADS,
    build,
    run_reference,
    source_for,
)

from helpers import vg


class TestSuiteStructure:
    def test_25_programs_like_the_paper(self):
        # "We performed experiments on 25 of the 26 SPEC CPU2000 benchmarks".
        assert len(ALL_WORKLOADS) == 25
        assert len(INT_WORKLOADS) == 12 and len(FP_WORKLOADS) == 13

    def test_table2_names(self):
        assert INT_WORKLOADS[0] == "bzip2" and "mcf" in INT_WORKLOADS
        assert "swim" in FP_WORKLOADS and "galgel" not in ALL_WORKLOADS

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build("galgel")

    def test_scaling_changes_size(self):
        small = run_reference("vpr", scale=0.1)
        large = run_reference("vpr", scale=0.3)
        assert large.guest_insns > small.guest_insns


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_is_deterministic_and_clean(name):
    """Every workload runs to completion with output, natively."""
    r1 = run_reference(name, scale=0.1)
    r2 = run_reference(name, scale=0.1)
    assert r1.exit_code == 0 and r1.fatal_signal is None
    assert r1.stdout == r2.stdout and r1.stdout.strip()


@pytest.mark.parametrize("name", ["gzip", "mcf", "swim", "vortex", "lucas"])
def test_workload_matches_under_instrumentation(name):
    """Representative spot-check of the native/DBI equivalence (the full
    25x2 sweep lives in the benchmark harness)."""
    wl = build(name, scale=0.1)
    from helpers import native

    nat = native(wl.image)
    for tool in ("none", "memcheck"):
        res = vg(wl.image, tool)
        assert res.stdout == nat.stdout, (name, tool)
        if tool == "memcheck":
            assert res.errors == []


class TestCLI(object):
    def _write(self, tmp_path, name, text):
        p = tmp_path / name
        p.write_text(text)
        return str(p)

    HELLO = """
        .text
main:   pushi msg
        call puts
        addi sp, 4
        movi r0, 3
        ret
        .data
msg:    .asciz "hi there"
"""

    def test_native_run(self, tmp_path, capsys):
        path = self._write(tmp_path, "hello.s", self.HELLO)
        rc = cli_main([path])
        assert rc == 3
        assert "hi there" in capsys.readouterr().out

    def test_tool_run_with_log_file(self, tmp_path, capsys):
        path = self._write(tmp_path, "hello.s", self.HELLO)
        log = tmp_path / "vg.log"
        rc = cli_main([f"--tool=memcheck", f"--log-file={log}", path])
        assert rc == 3
        assert "ERROR SUMMARY" in log.read_text()

    def test_tool_options_forwarded(self, tmp_path):
        path = self._write(tmp_path, "hello.s", self.HELLO)
        log = tmp_path / "vg.log"
        rc = cli_main(
            ["--tool=memcheck", "--leak-check=no", f"--log-file={log}", path]
        )
        assert rc == 3
        assert "LEAK SUMMARY" not in log.read_text()

    def test_unknown_tool(self, tmp_path, capsys):
        path = self._write(tmp_path, "hello.s", self.HELLO)
        assert cli_main(["--tool=nosuch", path]) == 2
        assert "unknown tool" in capsys.readouterr().err

    def test_unknown_option(self, tmp_path, capsys):
        path = self._write(tmp_path, "hello.s", self.HELLO)
        assert cli_main(["--tool=none", "--bogus=1", path]) == 2

    def test_client_args_passed(self, tmp_path, capsys):
        src = """
        .text
main:   ld   r0, [sp+4]
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
        path = self._write(tmp_path, "args.s", src)
        rc = cli_main([path, "a", "b", "c"])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_script_hashbang(self, tmp_path, capsys):
        interp = self._write(
            tmp_path,
            "interp.s",
            """
        .text
main:   ld   r1, [sp+8]
        ld   r0, [r1+4]       ; argv[1] = script path
        push r0
        call puts
        addi sp, 4
        movi r0, 0
        ret
""",
        )
        script = self._write(tmp_path, "prog.script", f"#!{interp}\npayload\n")
        rc = cli_main(["--tool=none", script])
        assert rc == 0
        assert "prog.script" in capsys.readouterr().out

    def test_help(self, capsys):
        assert cli_main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "memcheck" in out and "--smc-check" in out

    def test_fatal_signal_reported(self, tmp_path, capsys):
        src = """
        .text
main:   ld r0, [0x90000000]
        ret
"""
        path = self._write(tmp_path, "crash.s", src)
        rc = cli_main(["--tool=none", path])
        assert rc == 128 + 11
        assert "signal 11" in capsys.readouterr().err
