"""Differential testing: random programs through the whole pipeline.

Hypothesis generates random (but memory-safe) vx32 programs; each is run

* on the reference CPU ("native" execution), and
* through the full eight-phase D&R pipeline under Nulgrind and Memcheck

and the complete architected state — all integer/FP/SIMD registers, the
condition-code thunk, and the data segment — must match exactly.  This
single property exercises the disassembler, both optimisation passes
(including the condition-code spec helper and self-loop unrolling), tree
building, instruction selection, register allocation, assembly and the
host CPU, plus (for Memcheck) the guarantee that instrumentation never
perturbs the client.

The program generator and reference runner live in ``tests/helpers.py``
and are shared with the perf-mode differential suite
(``tests/test_perf_mode.py``).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from helpers import programs, ref_run
from repro import Options, assemble, run_tool


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.sampled_from(["none", "memcheck"]))
def test_random_program_differential(source, tool):
    img = assemble(source, filename="rand")
    ref_ts, ref_data, data_seg = ref_run(img)

    res = run_tool(tool, img, options=Options(log_target="capture"))
    sched = res.core.scheduler
    ts = sched.threads[1]
    ref_ts.pc = ts.pc  # both are one-past-halt; keep the comparison strict
    diffs = ref_ts.describe_diff(ts)
    assert not diffs, f"architected state differs under {tool}: {diffs}"
    got = sched.memory.read_raw(data_seg.addr, len(data_seg.data))
    assert got == ref_data, f"data segment differs under {tool}"
    if tool == "memcheck":
        # Generated programs only read initialised data: no errors allowed.
        kinds = [e.kind for e in res.errors]
        assert kinds == [], kinds


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_optimisation_ablation_agrees(source):
    """With opt1/opt2/unrolling disabled the results must be identical."""
    img = assemble(source, filename="rand")
    ref_ts, ref_data, data_seg = ref_run(img)
    res = run_tool(
        "none",
        img,
        options=Options(log_target="capture", opt1=False, opt2=False, unroll=False),
    )
    ts = res.core.scheduler.threads[1]
    ref_ts.pc = ts.pc
    assert not ref_ts.describe_diff(ts)
    got = res.core.scheduler.memory.read_raw(data_seg.addr, len(data_seg.data))
    assert got == ref_data
