"""Unit and property tests for the IR primitive-op table."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.ir.ops import F64CMP_EQ, F64CMP_GT, F64CMP_LT, F64CMP_UN, NUM_OPS, OPS, get_op
from repro.ir.types import Ty, mask, sign_extend

u8 = st.integers(0, 0xFF)
u16 = st.integers(0, 0xFFFF)
u32 = st.integers(0, 0xFFFFFFFF)
u64 = st.integers(0, 0xFFFFFFFFFFFFFFFF)
u128 = st.integers(0, (1 << 128) - 1)

_STRAT = {Ty.I1: st.integers(0, 1), Ty.I8: u8, Ty.I16: u16, Ty.I32: u32,
          Ty.I64: u64, Ty.V128: u128,
          Ty.F32: st.floats(width=32, allow_nan=False),
          Ty.F64: st.floats(allow_nan=False)}


def test_paper_claims_more_than_200_ops():
    assert NUM_OPS > 200


def test_unknown_op_raises():
    with pytest.raises(KeyError, match="unknown IR op"):
        get_op("Frobnicate32")


class TestIntegerALU:
    def test_add_wraps(self):
        assert get_op("Add32").apply(0xFFFFFFFF, 1) == 0
        assert get_op("Add8").apply(0xFF, 0xFF) == 0xFE

    def test_sub_wraps(self):
        assert get_op("Sub32").apply(0, 1) == 0xFFFFFFFF

    def test_mul_masks(self):
        assert get_op("Mul16").apply(0x1234, 0x5678) == (0x1234 * 0x5678) & 0xFFFF

    def test_logic(self):
        assert get_op("And32").apply(0xF0F0, 0x0FF0) == 0x00F0
        assert get_op("Or32").apply(0xF0F0, 0x0FF0) == 0xFFF0
        assert get_op("Xor32").apply(0xF0F0, 0x0FF0) == 0xFF00

    def test_not_neg(self):
        assert get_op("Not8").apply(0x0F) == 0xF0
        assert get_op("Neg32").apply(1) == 0xFFFFFFFF

    @given(u32, st.integers(0, 255))
    def test_shl_defined_beyond_width(self, a, s):
        got = get_op("Shl32").apply(a, s)
        want = (a << s) & 0xFFFFFFFF if s < 32 else 0
        assert got == want

    @given(u32, st.integers(0, 255))
    def test_sar_sign_fills(self, a, s):
        got = get_op("Sar32").apply(a, s)
        want = mask(32, sign_extend(32, a) >> min(s, 31))
        assert got == want

    def test_rotates(self):
        assert get_op("Rol32").apply(0x80000001, 1) == 0x00000003
        assert get_op("Ror32").apply(0x80000001, 1) == 0xC0000000
        assert get_op("Rol32").apply(0x1234, 0) == 0x1234

    def test_clz_ctz_popcnt(self):
        assert get_op("Clz32").apply(0) == 32
        assert get_op("Clz32").apply(1) == 31
        assert get_op("Ctz32").apply(0) == 32
        assert get_op("Ctz32").apply(8) == 3
        assert get_op("Popcnt32").apply(0xF0F0) == 8


class TestComparisons:
    def test_signed_vs_unsigned(self):
        assert get_op("CmpLT32S").apply(0xFFFFFFFF, 0) == 1  # -1 < 0
        assert get_op("CmpLT32U").apply(0xFFFFFFFF, 0) == 0
        assert get_op("CmpLE32S").apply(5, 5) == 1

    def test_eq_ne_nez(self):
        assert get_op("CmpEQ32").apply(7, 7) == 1
        assert get_op("CmpNE32").apply(7, 8) == 1
        assert get_op("CmpNEZ32").apply(0) == 0
        assert get_op("CmpNEZ32").apply(123) == 1

    @given(u32, u32)
    def test_lt_le_consistency(self, a, b):
        lt = get_op("CmpLT32U").apply(a, b)
        le = get_op("CmpLE32U").apply(a, b)
        eq = get_op("CmpEQ32").apply(a, b)
        assert le == (lt | eq)


class TestConversions:
    def test_widen_unsigned(self):
        assert get_op("8Uto32").apply(0xFF) == 0xFF

    def test_widen_signed(self):
        assert get_op("8Sto32").apply(0x80) == 0xFFFFFF80
        assert get_op("16Sto32").apply(0x7FFF) == 0x7FFF

    def test_narrow(self):
        assert get_op("32to8").apply(0x12345678) == 0x78
        assert get_op("32to1").apply(2) == 0

    def test_halves(self):
        assert get_op("64HIto32").apply(0x1122334455667788) == 0x11223344
        assert get_op("32HLto64").apply(0x11223344, 0x55667788) == 0x1122334455667788

    @given(u32)
    def test_widen_narrow_roundtrip(self, a):
        assert get_op("64to32").apply(get_op("32Uto64").apply(a)) == a


class TestMulDiv:
    def test_widening_multiply(self):
        assert get_op("MullU32").apply(0xFFFFFFFF, 2) == 0x1FFFFFFFE
        # -1 * 3 == -3 as a 64-bit value
        assert get_op("MullS32").apply(0xFFFFFFFF, 3) == (-3) & ((1 << 64) - 1)

    def test_division_truncates_toward_zero(self):
        assert get_op("DivS32").apply((-7) & 0xFFFFFFFF, 2) == (-3) & 0xFFFFFFFF
        assert get_op("ModS32").apply((-7) & 0xFFFFFFFF, 2) == (-1) & 0xFFFFFFFF
        assert get_op("DivU32").apply(7, 2) == 3

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            get_op("DivU32").apply(1, 0)
        with pytest.raises(ZeroDivisionError):
            get_op("ModS32").apply(1, 0)

    @given(u32, st.integers(1, 0xFFFFFFFF))
    def test_divmod_identity_unsigned(self, a, b):
        q = get_op("DivU32").apply(a, b)
        r = get_op("ModU32").apply(a, b)
        assert q * b + r == a
        assert r < b


class TestFloatingPoint:
    def test_arith(self):
        assert get_op("AddF64").apply(1.5, 2.25) == 3.75
        assert get_op("DivF64").apply(1.0, 4.0) == 0.25

    def test_div_by_zero_gives_inf(self):
        assert get_op("DivF64").apply(1.0, 0.0) == math.inf
        assert get_op("DivF64").apply(-1.0, 0.0) == -math.inf
        assert math.isnan(get_op("DivF64").apply(0.0, 0.0))

    def test_cmp_encoding(self):
        assert get_op("CmpF64").apply(1.0, 2.0) == F64CMP_LT
        assert get_op("CmpF64").apply(2.0, 1.0) == F64CMP_GT
        assert get_op("CmpF64").apply(2.0, 2.0) == F64CMP_EQ
        assert get_op("CmpF64").apply(math.nan, 1.0) == F64CMP_UN

    def test_f_to_i_saturates(self):
        assert get_op("F64toI32S").apply(1e30) == 0x7FFFFFFF
        assert get_op("F64toI32S").apply(-1e30) == 0x80000000
        assert get_op("F64toI32S").apply(math.nan) == 0x80000000
        assert get_op("F64toI32S").apply(-2.7) == (-2) & 0xFFFFFFFF

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_reinterp_roundtrip(self, v):
        bits = get_op("ReinterpF64asI64").apply(v)
        assert get_op("ReinterpI64asF64").apply(bits) == v

    def test_f32_rounding(self):
        # 0.1 is not exactly representable in F32.
        got = get_op("AddF32").apply(0.1, 0.0)
        assert got != 0.1 and abs(got - 0.1) < 1e-8


class TestSIMD:
    def test_lanewise_add_wraps_per_lane(self):
        a = 0xFF  # lane 0 = 0xFF
        b = 0x02
        assert get_op("Add8x16").apply(a, b) == 0x01  # no carry into lane 1

    def test_cmpeq_lanes(self):
        a = (5 << 8) | 7
        b = (6 << 8) | 7
        got = get_op("CmpEQ8x16").apply(a, b)
        assert got & 0xFF == 0xFF and (got >> 8) & 0xFF == 0

    def test_saturating_add(self):
        assert get_op("QAddU8x16").apply(0xF0, 0x20) == 0xFF

    def test_dup(self):
        got = get_op("Dup8x16").apply(0xAB)
        for lane in range(16):
            assert (got >> (8 * lane)) & 0xFF == 0xAB

    def test_hl_combination(self):
        v = get_op("64HLtoV128").apply(1, 2)
        assert get_op("V128HIto64").apply(v) == 1
        assert get_op("V128to64").apply(v) == 2

    def test_lane_shift(self):
        v = get_op("ShlN16x8").apply(0x0001_0001, 4)
        assert v == 0x0010_0010


@given(st.sampled_from(sorted(OPS)), st.data())
def test_every_op_is_total_and_well_typed(name, data):
    """Every op, applied to in-range values, yields an in-range result."""
    op = OPS[name]
    args = [data.draw(_STRAT[t]) for t in op.args]
    try:
        result = op.apply(*args)
    except ZeroDivisionError:
        assert name.startswith(("Div", "Mod"))
        return
    ret = op.ret
    if ret.is_float:
        assert isinstance(result, float)
    else:
        assert isinstance(result, int)
        assert 0 <= result <= ret.mask
