"""The persistent cross-process translation cache (``--cache-dir``).

The contract under test is strict: a cache can make a run *faster*,
never *different*.  Warm runs must be byte-identical to cold runs across
every codegen tier, any damaged or stale entry must degrade to a miss
(quarantined, counted), version bumps must orphan old entries, the size
budget must hold via LRU eviction, and a fleet of concurrent workers
hammered by kill plans must never leave a corrupt entry behind.
"""

from __future__ import annotations

import os
import zlib

import pytest

import repro
from repro import api
from repro.backend import pygen as _pygen
from repro.core import traces as _traces
from repro.core.codecache import CACHE_FORMAT_VERSION, CodeCache

from .helpers import asm_image, vg

#: Several distinct blocks, a hot loop, and float traffic — enough to
#: exercise disasm chasing, instrumentation, and the pygen emitter.
SRC = """
        .text
main:   movi r6, 0
        movi r7, 60
loop:   add  r6, r7
        dec  r7
        jnz  loop
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        push r0
        call exit
"""


def run_cached(cache_dir, tool="memcheck", src=SRC, **kw):
    kw.setdefault("stats_format", "json")
    # Explicit always (None = disabled), overriding any REPRO_CACHE_DIR
    # ambient default — these tests control their own cache directories.
    kw.setdefault("cache_dir",
                  str(cache_dir) if cache_dir is not None else None)
    opts = repro.Options(log_target="capture", **kw)
    return vg(src, tool, options=opts)


def assert_same_run(a, b):
    assert a.exit_code == b.exit_code
    assert a.stdout == b.stdout
    assert a.stderr == b.stderr
    assert a.log == b.log


def drop_in_memory_caches():
    """Forget every in-process translation product, so the next run must
    go through the disk cache (simulating a fresh process)."""
    _pygen.clear_emit_cache()
    _traces._BUILD_CACHE.clear()


class TestWarmEqualsCold:
    @pytest.mark.parametrize("tool", ["none", "memcheck", "cachegrind"])
    @pytest.mark.parametrize("codegen", ["closures", "pygen", "traces"])
    def test_warm_byte_identical(self, tmp_path, tool, codegen):
        cold = run_cached(tmp_path, tool, codegen=codegen,
                          trace_threshold=5)
        drop_in_memory_caches()
        warm = run_cached(tmp_path, tool, codegen=codegen,
                          trace_threshold=5)
        assert_same_run(cold, warm)
        cache = warm.stats()["cache"]
        assert cache["hits"] > 0
        assert cache["misses"] == 0
        assert cache["quarantined"] == 0

    def test_nocache_equals_cached(self, tmp_path):
        plain = run_cached(None, codegen="pygen")
        cold = run_cached(tmp_path, codegen="pygen")
        drop_in_memory_caches()
        warm = run_cached(tmp_path, codegen="pygen")
        assert_same_run(plain, cold)
        assert_same_run(plain, warm)
        assert plain.stats()["cache"] is None

    def test_warm_skips_translation_work(self, tmp_path):
        cold = run_cached(tmp_path, codegen="pygen")
        warm = run_cached(tmp_path, codegen="pygen")
        assert cold.stats()["cache"]["stores"] > 0
        c = warm.stats()["cache"]
        assert c["hits"] == cold.stats()["cache"]["misses"]
        # Translation counts stay identical — a hit still *counts* as a
        # translation (determinism for --inject schedules), it just
        # skips the pipeline.
        assert (warm.stats()["translations_made"]
                == cold.stats()["translations_made"])

    def test_different_tool_does_not_share(self, tmp_path):
        run_cached(tmp_path, "memcheck")
        warm = run_cached(tmp_path, "cachegrind")
        assert warm.stats()["cache"]["hits"] == 0

    def test_errors_identical_warm(self, tmp_path):
        bad = """
        .text
main:   movi r1, 64
        ld   r2, [r1]
        movi r0, 0
        push r0
        call exit
"""
        cold = run_cached(tmp_path, "memcheck", src=bad)
        warm = run_cached(tmp_path, "memcheck", src=bad)
        assert_same_run(cold, warm)
        assert ([e.kind for e in cold.errors]
                == [e.kind for e in warm.errors])


class TestInvalidation:
    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        run_cached(tmp_path)
        import repro.frontend.spec as spec

        monkeypatch.setattr(spec, "SPEC_VERSION", spec.SPEC_VERSION + 1)
        warm = run_cached(tmp_path)
        c = warm.stats()["cache"]
        assert c["hits"] == 0 and c["misses"] > 0

    def test_tool_options_invalidate(self, tmp_path):
        run_cached(tmp_path, "taintcheck", codegen="pygen")
        warm = run_cached(tmp_path, "taintcheck", codegen="pygen",
                          tool_options=["--taint-addr=no"])
        assert warm.stats()["cache"]["hits"] == 0

    def test_guest_bytes_verified(self, tmp_path):
        """Two different programs assembling blocks at the same address
        must not share entries: the guest-byte digest re-check makes the
        stale entry a miss, never a wrong translation."""
        other = SRC.replace("movi r7, 60", "movi r7, 61")
        a = run_cached(tmp_path, src=SRC)
        b = run_cached(tmp_path, src=other)
        plain = run_cached(None, src=other)
        assert_same_run(b, plain)
        # Shared blocks (libc prelude) may hit; the changed block cannot.
        assert b.stats()["cache"]["stores"] > 0


class TestCorruption:
    def _entries(self, tmp_path):
        base = tmp_path / f"v{CACHE_FORMAT_VERSION}"
        out = []
        for sub in ("t", "p", "x"):
            for dirpath, _dirs, files in os.walk(base / sub):
                out += [os.path.join(dirpath, f) for f in files]
        return out

    def test_tampered_entry_quarantined(self, tmp_path):
        cold = run_cached(tmp_path, codegen="pygen")
        entries = self._entries(tmp_path)
        assert entries
        for path in entries:  # flip one byte in every entry payload
            with open(path, "rb") as f:
                raw = bytearray(f.read())
            raw[len(raw) // 2] ^= 0xFF
            with open(path, "wb") as f:
                f.write(bytes(raw))
        drop_in_memory_caches()
        warm = run_cached(tmp_path, codegen="pygen")
        assert_same_run(cold, warm)
        c = warm.stats()["cache"]
        assert c["quarantined"] > 0
        assert c["hits"] == 0
        qdir = tmp_path / f"v{CACHE_FORMAT_VERSION}" / "quarantine"
        assert any(qdir.iterdir())

    def test_truncated_entry_quarantined(self, tmp_path):
        cold = run_cached(tmp_path)
        path = self._entries(tmp_path)[0]
        with open(path, "wb") as f:
            f.write(b"RC")  # shorter than the header
        warm = run_cached(tmp_path)
        assert_same_run(cold, warm)
        assert warm.stats()["cache"]["quarantined"] >= 1

    def test_unreadable_cache_dir_disables_cache(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should go\n")
        res = run_cached(target)  # OSError on open -> cache disabled
        assert res.exit_code == 0
        assert res.stats()["cache"] is None


class TestBudget:
    def test_lru_eviction(self, tmp_path):
        cache = CodeCache(str(tmp_path), max_mb=1)
        blob = os.urandom(200 * 1024)

        def fetch(start, length):
            return blob[start:start + length]

        stored = 0
        for i in range(30):  # ~6MB through a 1MB budget
            cache.store_translation(
                b"\x01" * 32, 0x1000 + i, fetch,
                code=blob, ranges=((i, 1024),), irsb=None, stats=None,
            )
            stored += 1
        assert cache.stats.evictions > 0
        assert cache.stats.evicted_bytes > 0
        cache._enforce_budget()  # settle the periodic check interval
        total = 0
        for dirpath, _dirs, files in os.walk(tmp_path):
            for f in files:
                total += os.path.getsize(os.path.join(dirpath, f))
        assert total <= cache.max_bytes + 256 * 1024  # budget + 1 entry

    def test_recent_entries_survive(self, tmp_path):
        cache = CodeCache(str(tmp_path), max_mb=1)
        raw = os.urandom(300 * 1024)

        def fetch(start, length):
            return raw[start:start + length]

        now = 1_700_000_000
        for i in range(20):
            cache.store_translation(
                b"\x02" * 32, 0x2000 + i, fetch,
                code=raw, ranges=((i, 64),), irsb=None, stats=None,
            )
            # Deterministic mtimes: later stores look more recent.
            d = cache._t_dir(b"\x02" * 32)
            name = cache._t_index[d][0x2000 + i][0]
            os.utime(os.path.join(d, name), (now + i, now + i))
        cache._enforce_budget()
        hit = cache.lookup_translation(b"\x02" * 32, 0x2000 + 19, fetch)
        assert hit is not None  # newest survived
        assert cache.lookup_translation(b"\x02" * 32, 0x2000, fetch) is None

    def test_emit_cache_lru_counts_evictions(self):
        budget = _pygen._EMIT_CACHE_BUDGET
        stats0 = dict(_pygen._EMIT_CACHE_STATS)
        try:
            _pygen.set_emit_cache_budget(2048)
            # cache_dir=None: with a disk cache open the scheduler would
            # re-plumb the budget from --cache-max-mb, masking ours.
            vg(SRC, "memcheck", codegen="pygen", cache_dir=None)
            s = _pygen.emit_cache_stats()
            assert s["evictions"] > stats0.get("evictions", 0)
            assert s["bytes"] <= 2048
        finally:
            _pygen.set_emit_cache_budget(budget)

    def test_emit_cache_stats_in_codegen_section(self, tmp_path):
        res = run_cached(tmp_path, codegen="pygen")
        emit = res.stats()["codegen"]["emit_cache"]
        assert {"hits", "misses", "evictions", "entries",
                "bytes"} <= set(emit)


class TestConcurrentFleet:
    def test_kill_hammered_fleet_never_corrupts(self, tmp_path):
        """Workers SIGKILLed mid-run while sharing one cache directory:
        survivors and the follow-up warm run must still be byte-correct,
        and no entry may be quarantined afterwards (atomic writes mean a
        killed writer leaves at worst an orphaned temp file)."""
        program = str(tmp_path / "prog.s")
        with open(program, "w") as f:
            f.write("""\
main:
        movi r0, 600
loop:
        sub  r0, 1
        jnz  loop
        movi r0, 7
        ret
""")
        cache_dir = str(tmp_path / "cache")
        jobs = [
            api.JobSpec(job_id=i, program=program, tool="none",
                        flags=["--codegen=pygen", "--stats=json"])
            for i in range(8)
        ]
        report = api.run_fleet(
            jobs,
            workers=3,
            policy=api.RetryPolicy(max_retries=3, backoff_base=0.01,
                                   seed=11),
            inject="kill:0.3,seed=11",
            record_bundles=False,
            cache_dir=cache_dir,
            cache_max_mb=64,
        )
        assert report.summary["terminal-failure"] == 0

        plain = run_cached(None, "none", codegen="pygen",
                           src="""
        .text
main:   movi r0, 600
loop:   sub  r0, 1
        jnz  loop
        movi r0, 7
        push r0
        call exit
""")
        # The real check: a warm in-process run over the hammered cache.
        opts = repro.Options(log_target="capture", stats_format="json",
                             cache_dir=cache_dir, codegen="pygen")
        warm = api.run(program, "none", opts, argv=[program])
        assert warm.exit_code == 7
        assert warm.stats["cache"]["quarantined"] == 0
        assert warm.stats["cache"]["hits"] > 0

    def test_fleet_aggregates_cache_stats(self, tmp_path):
        program = str(tmp_path / "prog.s")
        with open(program, "w") as f:
            f.write("main:\n        movi r0, 7\n        ret\n")
        cache_dir = str(tmp_path / "cache")

        def fleet():
            return api.run_fleet(
                [program] * 4, tool="none",
                flags=["--stats=json"], workers=2,
                record_bundles=False, cache_dir=cache_dir,
            )

        fleet()
        warm = fleet()
        assert warm.cache is not None
        assert warm.cache["hits"] > 0  # fleet-aggregated, across workers

    def test_supervisor_injects_cache_flags_once(self, tmp_path):
        spec = api.JobSpec(job_id=0, program="x.s", tool="none",
                           flags=["--cache-dir=/elsewhere"])
        sup = api.FleetSupervisor(
            [spec], cache_dir=str(tmp_path), record_bundles=False,
        )
        assert spec.flags.count("--cache-dir=/elsewhere") == 1
        assert not any(f == f"--cache-dir={tmp_path}" for f in spec.flags)
        spec2 = api.JobSpec(job_id=0, program="x.s", tool="none")
        api.FleetSupervisor([spec2], cache_dir=str(tmp_path),
                            record_bundles=False)
        assert f"--cache-dir={tmp_path}" in spec2.flags


class TestSmcInteraction:
    def test_smc_crc_recomputed_on_hit(self, tmp_path):
        """A hit's SMC hash comes from the *re-fetched* bytes, so the
        stored entry can never carry a stale CRC."""
        cache = CodeCache(str(tmp_path))
        raw = b"\x90" * 64

        def fetch(start, length):
            return raw[start:start + length]

        cache.store_translation(
            b"\x03" * 32, 0x3000, fetch,
            code=b"CODE", ranges=((0, 64),), irsb=None, stats=None,
        )
        hit = cache.lookup_translation(b"\x03" * 32, 0x3000, fetch)
        assert hit is not None
        assert hit["smc_crc"] == zlib.crc32(raw)

    def test_smc_warm_run_identical(self, tmp_path):
        smc = """
        .text
main:   movi r6, 0
        movi r7, 10
loop:   add  r6, r7
        dec  r7
        jnz  loop
        push r6
        call putint
        movi r0, 0
        push r0
        call exit
"""
        cold = run_cached(tmp_path, "memcheck", src=smc, smc_check="all")
        warm = run_cached(tmp_path, "memcheck", src=smc, smc_check="all")
        assert_same_run(cold, warm)
        assert warm.stats()["cache"]["hits"] > 0
        assert warm.stats()["smc"]["checks"] == cold.stats()["smc"]["checks"]
