"""Encoder/decoder tests, including a full round-trip property over the
whole instruction set."""

import pytest
from hypothesis import given, strategies as st

from repro.guest.encoding import DecodeError, decode, encode, insn_length
from repro.guest.isa import (
    Cond,
    FReg,
    Imm,
    Insn,
    Mem,
    OpKind,
    Reg,
    VReg,
    all_mnemonics,
    insn_def,
)


def _operand_strategy(kind: OpKind):
    if kind is OpKind.GPR:
        return st.builds(Reg, st.integers(0, 7))
    if kind is OpKind.FREG:
        return st.builds(FReg, st.integers(0, 7))
    if kind is OpKind.VREG:
        return st.builds(VReg, st.integers(0, 7))
    if kind is OpKind.COND:
        return st.builds(Cond, st.integers(0, 13))
    if kind is OpKind.IMM8:
        return st.builds(Imm, st.integers(0, 255))
    if kind in (OpKind.IMM32, OpKind.REL32):
        return st.builds(Imm, st.integers(0, 0xFFFFFFFF))
    if kind is OpKind.MEM:
        return st.builds(
            Mem,
            base=st.one_of(st.none(), st.integers(0, 7)),
            index=st.one_of(st.none(), st.integers(0, 7)),
            scale=st.sampled_from([1, 2, 4, 8]),
            disp=st.integers(0, 0xFFFFFFFF),
        )
    raise AssertionError(kind)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(all_mnemonics()))
    d = insn_def(mnemonic)
    operands = tuple(draw(_operand_strategy(k)) for k in d.operands)
    addr = draw(st.integers(0, 0xFFFF0000)) & ~0
    return Insn(mnemonic, operands, addr=addr)


@given(instructions())
def test_encode_decode_roundtrip(insn):
    raw = encode(insn)
    assert len(raw) == insn_length(insn.mnemonic, insn.operands)
    back = decode(raw, 0, insn.addr)
    assert back.mnemonic == insn.mnemonic
    assert back.length == len(raw)
    for kind, a, b in zip(insn.idef.operands, insn.operands, back.operands):
        if kind is OpKind.REL32:
            # Displacements are relative: targets round-trip mod 2^32.
            assert b.value == a.value & 0xFFFFFFFF
        elif kind is OpKind.MEM:
            assert (a.base, a.index, a.disp) == (b.base, b.index, b.disp)
            if a.index is not None:
                assert a.scale == b.scale
        else:
            assert a == b


def test_variable_lengths():
    assert insn_length("nop", ()) == 1
    assert insn_length("movi", (Reg(0), Imm(1))) == 6
    # The classic Figure-1 shape: a load with base+disp is 7 bytes.
    assert insn_length("ld", (Reg(0), Mem(base=3, disp=0x10))) == 7
    # Largest form: ALU reg, [base+index*scale+disp].
    assert insn_length("addm_", (Reg(0), Mem(base=1, index=2, scale=4, disp=1))) == 8


def test_bad_opcode_rejected():
    with pytest.raises(DecodeError, match="bad opcode"):
        decode(b"\xff", 0, 0)


def test_truncated_rejected():
    raw = encode(Insn("movi", (Reg(0), Imm(0x12345678))))
    with pytest.raises(DecodeError, match="truncated"):
        decode(raw[:3], 0, 0)


def test_bad_register_rejected():
    raw = bytearray(encode(Insn("mov", (Reg(0), Reg(1)))))
    raw[1] = 9
    with pytest.raises(DecodeError, match="bad register"):
        decode(bytes(raw), 0, 0)


def test_rel32_is_relative_to_insn_end():
    insn = Insn("jmp", (Imm(0x1000),), addr=0x2000)
    raw = encode(insn)
    rel = int.from_bytes(raw[1:5], "little")
    assert (0x2000 + len(raw) + rel) & 0xFFFFFFFF == 0x1000


def test_jcc_str_uses_condition_synonyms():
    insn = Insn("jcc", (Cond(0x8), Imm(0x30)))
    assert str(insn).startswith("jl ")
