"""Legacy setup shim: lets `pip install -e .` work without the `wheel`
package (the offline environments this repo targets lack PEP-660 support)."""

from setuptools import setup

setup()
